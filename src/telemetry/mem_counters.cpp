#include "telemetry/mem_counters.h"

#include <cinttypes>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "telemetry/mem_stats.h"
#include "telemetry/plane_report.h"

namespace viator::telemetry::mem {

const char* DomainName(Domain domain) {
  switch (domain) {
    case Domain::kShuttlePool: return "mem.shuttle_pool";
    case Domain::kCalendarQueue: return "mem.calendar_queue";
    case Domain::kRouteCache: return "mem.route_cache";
    case Domain::kFlatMap: return "mem.flat_map";
    case Domain::kStatsRegistry: return "mem.stats_registry";
    case Domain::kJournalRing: return "mem.journal_ring";
    case Domain::kMailbox: return "mem.mailbox";
    case Domain::kGenesisBuffer: return "mem.genesis_buffer";
    case Domain::kFactsGenome: return "mem.facts_genome";
    case Domain::kCount: break;
  }
  return "mem.unknown";
}

}  // namespace viator::telemetry::mem

namespace viator::telemetry {

void PublishMemStats(sim::StatsRegistry& stats,
                     const std::array<mem::Counter, mem::kDomainCount>&
                         aggregate) {
  for (std::size_t i = 0; i < mem::kDomainCount; ++i) {
    const mem::Counter& c = aggregate[i];
    plane::PublishGaugeRow(
        stats, mem::DomainName(static_cast<mem::Domain>(i)),
        {{".live_bytes", static_cast<double>(c.live_bytes)},
         {".peak_bytes", static_cast<double>(c.peak_bytes)},
         {".allocs", static_cast<double>(c.allocs)},
         {".frees", static_cast<double>(c.frees)},
         {".alloc_bytes", static_cast<double>(c.alloc_bytes)},
         {".free_bytes", static_cast<double>(c.free_bytes)}});
  }
}

void PublishMemStats(sim::StatsRegistry& stats) {
  PublishMemStats(stats, mem::Aggregate());
}

void PublishProcStats(sim::StatsRegistry& stats, std::uint64_t rss_bytes,
                      std::uint64_t maxrss_bytes) {
  stats.GetGauge("proc.rss_bytes").Set(static_cast<double>(rss_bytes));
  stats.GetGauge("proc.maxrss_bytes").Set(static_cast<double>(maxrss_bytes));
}

std::uint64_t ReadRssBytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt, in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int matched =
      std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

std::uint64_t ReadMaxRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // ru_maxrss is bytes on Darwin, kilobytes on Linux/BSD.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

std::string FormatMemReport(
    const std::array<mem::Counter, mem::kDomainCount>& aggregate,
    std::uint64_t maxrss_bytes) {
  std::int64_t total_live = 0;
  std::int64_t total_peak = 0;
  std::uint64_t total_allocs = 0;
  std::uint64_t total_frees = 0;
  std::uint64_t total_alloc_bytes = 0;
  for (const mem::Counter& c : aggregate) {
    total_live += c.live_bytes;
    total_peak += c.peak_bytes;
    total_allocs += c.allocs;
    total_frees += c.frees;
    total_alloc_bytes += c.alloc_bytes;
  }

  plane::TableBuilder table;
  table.Line("%-22s %14s %14s %10s %10s %14s\n", "domain", "live", "peak",
             "allocs", "frees", "alloc bytes");
  for (std::size_t i = 0; i < mem::kDomainCount; ++i) {
    const mem::Counter& c = aggregate[i];
    if (c.allocs == 0 && c.frees == 0) continue;
    table.DataRow("%-22s %14" PRId64 " %14" PRId64 " %10" PRIu64
                  " %10" PRIu64 " %14" PRIu64 "\n",
                  mem::DomainName(static_cast<mem::Domain>(i)), c.live_bytes,
                  c.peak_bytes, c.allocs, c.frees, c.alloc_bytes);
  }
  if (table.has_rows()) {
    table.Line("%-22s %14" PRId64 " %14" PRId64 " %10" PRIu64 " %10" PRIu64
               " %14" PRIu64 "\n",
               "total", total_live, total_peak, total_allocs, total_frees,
               total_alloc_bytes);
    if (maxrss_bytes != 0) {
      const double coverage =
          100.0 * static_cast<double>(total_live > 0 ? total_live : 0) /
          static_cast<double>(maxrss_bytes);
      table.Line("coverage: %" PRId64 " live of %" PRIu64
                 " maxrss bytes (%.1f%%)\n",
                 total_live, maxrss_bytes, coverage);
    }
  }
  return std::move(table).Finish(
      "(no allocations recorded: counters disabled or nothing ran)");
}

std::string FormatMemReport() { return FormatMemReport(mem::Aggregate()); }

}  // namespace viator::telemetry
