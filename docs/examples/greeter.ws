; greeter.ws — the minimal shuttle program: read two arguments from the
; locals frame (wsc run docs/examples/greeter.ws 20 22), add them, emit.
  load 0
  load 1
  add
  sys emit
  halt
