; checksum.ws — fold the shuttle payload into a rolling digest through a
; subroutine, emit it and store it as fact 555 on the hosting ship.
; Build/run with the wsc tool:
;   wsc verify docs/examples/checksum.ws
;   wsc run    docs/examples/checksum.ws        (no payload: emits seed 7)
  sys payload_size
  store 1
  push 7
  store 2
loop:
  load 0
  load 1
  lt
  jz done
  call fold
  load 0
  push 1
  add
  store 0
  jmp loop
done:
  load 2
  sys emit
  pop
  push 555
  load 2
  push 100
  sys put_fact
  halt
fold:
  load 2
  push 31
  mul
  load 0
  sys payload
  add
  store 2
  ret
