// Tests for ship aggregation (SRP Def. 2(3)), community auditing, and the
// Replication/Next-Step role services (Forward-and-Copy / Oracle).
#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/accounting.h"
#include "services/audit.h"
#include "services/replication.h"
#include "services/routing.h"
#include "sim/simulator.h"

namespace viator {
namespace {

struct ExtFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology = net::MakeRing(6);
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> wn;

  void Build() {
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 42);
    wn->PopulateAllNodes();
  }
};

// ---- Ship aggregation ----

TEST_F(ExtFixture, AggregateFormsAndExpires) {
  Build();
  auto aggregate =
      wli::ShipAggregate::Form(*wn, {0, 1, 2}, 2 * sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->speaker(), 0u);
  EXPECT_TRUE(aggregate->Alive(simulator.now()));
  EXPECT_TRUE(aggregate->Alive(sim::kSecond));
  EXPECT_FALSE(aggregate->Alive(3 * sim::kSecond));  // temporary!
  aggregate->Renew(3 * sim::kSecond, 2 * sim::kSecond);
  EXPECT_TRUE(aggregate->Alive(4 * sim::kSecond));
}

TEST_F(ExtFixture, AggregateRejectsBadMemberSets) {
  Build();
  EXPECT_FALSE(wli::ShipAggregate::Form(*wn, {0}, sim::kSecond).ok());
  EXPECT_FALSE(wli::ShipAggregate::Form(*wn, {0, 0}, sim::kSecond).ok());
  EXPECT_FALSE(wli::ShipAggregate::Form(*wn, {0, 99}, sim::kSecond).ok());
}

TEST_F(ExtFixture, JointBlueprintMergesMembers) {
  Build();
  wn->ship(0)->facts().Touch(1, 10, 5.0, 0);
  wn->ship(1)->facts().Touch(2, 20, 3.0, 0);
  wn->ship(1)->facts().Touch(1, 99, 1.0, 0);  // weaker duplicate of key 1
  wli::NetFunction fn;
  fn.name = "member-fn";
  fn.role = node::FirstLevelRole::kFusion;
  wn->DeployFunction(1, fn);

  auto aggregate =
      wli::ShipAggregate::Form(*wn, {0, 1, 2}, sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  const auto joint = aggregate->JointBlueprint();
  // Union of functions across members.
  ASSERT_EQ(joint.functions.size(), 1u);
  EXPECT_EQ(joint.functions[0].name, "member-fn");
  // Facts deduped by key, heaviest kept.
  bool saw_key1 = false;
  for (const auto& fact : joint.facts) {
    if (fact.key == 1) {
      saw_key1 = true;
      EXPECT_EQ(fact.value, 10);
      EXPECT_DOUBLE_EQ(fact.weight, 5.0);
    }
  }
  EXPECT_TRUE(saw_key1);
}

TEST_F(ExtFixture, AggregatePoolsCapacityAndRoundRobins) {
  Build();
  auto aggregate =
      wli::ShipAggregate::Form(*wn, {0, 1, 2}, 10 * sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->PooledFuelBudget(),
            3 * config.quota.fuel_per_epoch);
  std::vector<net::NodeId> chosen;
  for (int i = 0; i < 6; ++i) {
    wli::Shuttle work = wli::Shuttle::Data(3, 0, {i}, i);
    auto member = aggregate->DispatchWork(std::move(work));
    ASSERT_TRUE(member.ok());
    chosen.push_back(*member);
  }
  simulator.RunAll();
  EXPECT_EQ(chosen, (std::vector<net::NodeId>{0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(aggregate->work_dispatched(), 6u);
}

TEST_F(ExtFixture, ExpiredAggregateRefusesWork) {
  Build();
  auto aggregate = wli::ShipAggregate::Form(*wn, {0, 1}, sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  simulator.RunUntil(2 * sim::kSecond);
  EXPECT_EQ(aggregate->DispatchWork(wli::Shuttle::Data(2, 0, {1}, 1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ExtFixture, AggregationFeedsClustering) {
  Build();
  auto aggregate =
      wli::ShipAggregate::Form(*wn, {0, 1, 2}, sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_GT(wn->clusters().AffinityBetween(0, 1), 0.0);
  EXPECT_EQ(wn->stats().CounterValue("wn.aggregates_formed"), 1u);
}

// ---- Audit service ----

TEST_F(ExtFixture, AuditPassesHonestShips) {
  Build();
  services::AuditService audit(*wn, {}, Rng(5));
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(audit.RunRound(), 0u);
  }
  EXPECT_GT(audit.audits(), 0u);
  EXPECT_EQ(audit.violations(), 0u);
  for (net::NodeId n = 0; n < 6; ++n) {
    EXPECT_FALSE(wn->reputation().IsExcluded(n));
  }
}

TEST_F(ExtFixture, AuditCatchesAndExcludesDishonestShip) {
  Build();
  wn->ship(3)->set_honest(false);
  services::AuditService::Config cfg;
  cfg.samples_per_round = 6;  // audit everyone-ish each round
  services::AuditService audit(*wn, cfg, Rng(5));
  for (int round = 0; round < 40; ++round) {
    (void)audit.RunRound();
  }
  EXPECT_GT(audit.violations(), 0u);
  EXPECT_TRUE(wn->reputation().IsExcluded(3));
  // Exclusion has teeth: the liar's traffic is refused.
  EXPECT_EQ(wn->Inject(wli::Shuttle::Data(3, 0, {1}, 1)).code(),
            StatusCode::kPermissionDenied);
  // Honest ships are unaffected.
  EXPECT_FALSE(wn->reputation().IsExcluded(0));
}

TEST_F(ExtFixture, AuditLoopRunsPeriodically) {
  Build();
  services::AuditService::Config cfg;
  cfg.interval = 100 * sim::kMillisecond;
  services::AuditService audit(*wn, cfg, Rng(5));
  audit.Start(sim::kSecond);
  simulator.RunUntil(sim::kSecond);
  EXPECT_GE(audit.audits(), 9u * cfg.samples_per_round);
}

// ---- Forward-and-Copy ----

TEST_F(ExtFixture, ForwardAndCopyTeesTraffic) {
  Build();
  services::ForwardAndCopy::Config cfg;
  cfg.monitor = 5;
  services::ForwardAndCopy fac(*wn, 2, cfg);
  int at_destination = 0, at_monitor = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++at_destination; });
  wn->ship(5)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++at_monitor; });
  // Payload prefix carries the final destination (4); FaC node is 2.
  for (int i = 0; i < 3; ++i) {
    (void)wn->Inject(wli::Shuttle::Data(0, 2, {4, 100 + i}, 7));
  }
  simulator.RunAll();
  EXPECT_EQ(at_destination, 3);
  EXPECT_EQ(at_monitor, 3);
  EXPECT_EQ(fac.forwarded(), 3u);
  EXPECT_EQ(fac.copied(), 3u);
}

TEST_F(ExtFixture, ForwardAndCopyFiltersByFlow) {
  Build();
  services::ForwardAndCopy::Config cfg;
  cfg.monitor = 5;
  cfg.flow_filter = 7;
  services::ForwardAndCopy fac(*wn, 2, cfg);
  int at_monitor = 0;
  wn->ship(5)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++at_monitor; });
  (void)wn->Inject(wli::Shuttle::Data(0, 2, {4, 1}, /*flow=*/7));
  (void)wn->Inject(wli::Shuttle::Data(0, 2, {4, 2}, /*flow=*/8));
  simulator.RunAll();
  EXPECT_EQ(fac.forwarded(), 2u);  // both forwarded
  EXPECT_EQ(fac.copied(), 1u);     // only flow 7 copied
  EXPECT_EQ(at_monitor, 1);
}

// ---- Next-Step oracle ----

TEST_F(ExtFixture, OracleProgramsAndAppliesNextStep) {
  Build();
  services::NextStepOracle oracle(*wn, 2);
  // Hot demand for fission at node 2.
  for (int i = 0; i < 10; ++i) {
    wn->demand().Record(2, node::FirstLevelRole::kFission, 1.0);
  }
  EXPECT_EQ(oracle.UpdateRegister(), node::FirstLevelRole::kFission);
  EXPECT_EQ(wn->ship(2)->os().next_step(), node::FirstLevelRole::kFission);
  EXPECT_EQ(wn->ship(2)->os().current_role(),
            node::FirstLevelRole::kCaching);  // not yet applied
  EXPECT_TRUE(oracle.ApplyNextStep());
  EXPECT_EQ(wn->ship(2)->os().current_role(),
            node::FirstLevelRole::kFission);
  EXPECT_FALSE(oracle.ApplyNextStep());  // already there
  EXPECT_EQ(oracle.steps_applied(), 1u);
}

TEST_F(ExtFixture, JointBlueprintAppliesToFreshShip) {
  // Def. 2(3): the aggregate's joint architecture is itself a genome — a
  // fresh ship can adopt it (functions + pooled facts) in one step.
  Build();
  wn->ship(0)->facts().Touch(11, 100, 4.0, 0);
  wli::NetFunction fn;
  fn.name = "joint-fn";
  fn.role = node::FirstLevelRole::kFission;
  wn->DeployFunction(1, fn);
  auto aggregate =
      wli::ShipAggregate::Form(*wn, {0, 1}, 10 * sim::kSecond);
  ASSERT_TRUE(aggregate.ok());
  const auto joint = aggregate->JointBlueprint();

  wli::Ship* adopter = wn->ship(5);
  ASSERT_TRUE(adopter->ApplyBlueprint(joint).ok());
  EXPECT_EQ(adopter->facts().Get(11), std::optional<std::int64_t>(100));
  EXPECT_FALSE(adopter->functions().functions().empty());
}

// ---- Accounting ----

TEST_F(ExtFixture, AccountingChargesForConsumption) {
  Build();
  services::Tariff tariff;
  tariff.per_shuttle_consumed = 2;
  tariff.per_role_switch = 10;
  services::AccountingService accounting(*wn, tariff,
                                         100 * sim::kMillisecond);
  // Some consumption at ship 3: five shuttles and one role switch.
  for (int i = 0; i < 5; ++i) {
    (void)wn->Inject(wli::Shuttle::Data(0, 3, {i}, 1));
  }
  (void)wn->ship(3)->SwitchRole(node::FirstLevelRole::kFusion,
                                node::SwitchMechanism::kResidentSoftware);
  simulator.RunAll();
  accounting.MeterOnce();
  const auto charges = accounting.ChargesFor(3);
  EXPECT_EQ(charges.shuttle_credits, 10u);   // 5 shuttles x 2
  EXPECT_EQ(charges.reconfig_credits, 10u);  // 1 switch x 10
  EXPECT_GT(accounting.TotalBilled(), 0u);
}

TEST_F(ExtFixture, AccountingDeltasDoNotDoubleCharge) {
  Build();
  services::AccountingService accounting(*wn, services::Tariff{},
                                         100 * sim::kMillisecond);
  (void)wn->Inject(wli::Shuttle::Data(0, 3, {1}, 1));
  simulator.RunAll();
  accounting.MeterOnce();
  const auto first = accounting.ChargesFor(3).shuttle_credits;
  accounting.MeterOnce();  // no new consumption
  EXPECT_EQ(accounting.ChargesFor(3).shuttle_credits, first);
}

TEST_F(ExtFixture, AccountingPeriodicLoopRuns) {
  Build();
  services::AccountingService accounting(*wn, services::Tariff{},
                                         100 * sim::kMillisecond);
  accounting.Start(sim::kSecond);
  simulator.RunUntil(sim::kSecond);
  EXPECT_GE(accounting.metering_passes(), 9u);
}

// ---- Router discovery backoff ----

TEST_F(ExtFixture, DiscoveryBackoffLimitsFloodStorms) {
  Build();
  topology.SetLinkUp(0, false);
  topology.SetLinkUp(5, false);  // isolate node 0 on the ring
  services::AdaptiveAdHocRouter::Config cfg;
  cfg.discovery_backoff = sim::kSecond;
  cfg.max_buffered_per_node = 100;
  services::AdaptiveAdHocRouter router(*wn, cfg);
  // 10 sends to an unreachable destination in quick succession: exactly one
  // discovery flood inside the backoff window.
  for (int i = 0; i < 10; ++i) {
    (void)router.Send(0, 3, {i}, i);
    simulator.RunAll();
  }
  EXPECT_EQ(router.discoveries(), 1u);
  // After the window, the gate reopens.
  simulator.RunUntil(simulator.now() + 2 * sim::kSecond);
  (void)router.Send(0, 3, {99}, 99);
  simulator.RunAll();
  EXPECT_EQ(router.discoveries(), 2u);
}

}  // namespace
}  // namespace viator
