// Self-Referential Health Plane: probe codec, registry scoring, anomaly
// rules, determinism neutrality, genesis checkpoint/resume and the
// report/regression-gate logic behind tools/wnhealth.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/wandering_network.h"
#include "genesis/adapters.h"
#include "genesis/manager.h"
#include "health/health.h"
#include "health/mem_growth.h"
#include "health/probe.h"
#include "health/report.h"
#include "net/failure.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace viator {
namespace {

constexpr std::uint64_t kSeed = 77002611;

// ---- Probe payload codec ----------------------------------------------------

TEST(ProbeCodec, RoundTripsHeaderWaypointsAndHops) {
  const std::vector<net::NodeId> waypoints = {3, 7};
  auto payload = health::EncodeProbe(42, 6, 1234567, waypoints);
  EXPECT_EQ(health::ProbeCursor(payload), 0u);
  EXPECT_EQ(health::ProbeWaypointCount(payload), 2u);
  EXPECT_EQ(health::ProbeWaypoint(payload, 0), 3u);
  EXPECT_EQ(health::ProbeWaypoint(payload, 1), 7u);
  health::SetProbeCursor(payload, 1);

  health::HopSample hop;
  hop.ship = 3;
  hop.arrived_from = 0;
  hop.arrival = 2000000;
  hop.queue_bytes = 512;
  hop.service_latency_ns = 900;
  hop.code_executions = 4;
  hop.code_misses = 1;
  hop.ttl_remaining = 63;
  health::AppendHop(payload, hop);
  hop.ship = 7;
  hop.arrived_from = 3;
  hop.arrival = 3000000;
  health::AppendHop(payload, hop);

  const auto record = health::DecodeProbe(payload);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->probe_id, 42u);
  EXPECT_EQ(record->round, 6u);
  EXPECT_EQ(record->emitted, 1234567u);
  EXPECT_EQ(record->waypoints, waypoints);
  ASSERT_EQ(record->hops.size(), 2u);
  EXPECT_EQ(record->hops[0].ship, 3u);
  EXPECT_EQ(record->hops[0].queue_bytes, 512u);
  EXPECT_EQ(record->hops[0].service_latency_ns, 900u);
  EXPECT_EQ(record->hops[1].ship, 7u);
  EXPECT_EQ(record->hops[1].arrived_from, 3u);
  EXPECT_EQ(record->hops[1].arrival, 3000000u);
  EXPECT_EQ(record->hops[1].ttl_remaining, 63u);
}

TEST(ProbeCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(health::DecodeProbe({}).has_value());
  EXPECT_FALSE(health::DecodeProbe({1, 2, 3}).has_value());
  // Waypoint count larger than the payload.
  EXPECT_FALSE(health::DecodeProbe({1, 0, 0, 99, 0}).has_value());
  // Hop region not a multiple of the hop width.
  auto payload = health::EncodeProbe(1, 0, 0, {2});
  payload.push_back(7);
  EXPECT_FALSE(health::DecodeProbe(payload).has_value());
}

// ---- Registry scoring -------------------------------------------------------

health::ProbeRecord OneHopRecord(net::NodeId ship, std::uint64_t queue_bytes,
                                 sim::TimePoint emitted, sim::TimePoint arrival,
                                 std::uint64_t executions = 0,
                                 std::uint64_t misses = 0) {
  health::ProbeRecord record;
  record.probe_id = 1;
  record.emitted = emitted;
  record.waypoints = {ship};
  health::HopSample hop;
  hop.ship = ship;
  hop.arrival = arrival;
  hop.queue_bytes = queue_bytes;
  hop.code_executions = executions;
  hop.code_misses = misses;
  record.hops.push_back(hop);
  return record;
}

TEST(HealthRegistry, ScoresDegradeWithQueueLatencyAndLoss) {
  health::HealthConfig config;
  health::HealthRegistry registry(config);
  EXPECT_DOUBLE_EQ(registry.ScoreOf(4), 1.0);  // never observed

  // Fast, empty ship: score stays near 1.
  registry.RecordEmission({4});
  registry.AbsorbProbe(OneHopRecord(4, 0, 0, 1000));
  const double healthy = registry.ScoreOf(4);
  EXPECT_GT(healthy, 0.99);

  // Heavy queue and slow hops push the score down.
  registry.RecordEmission({5});
  registry.AbsorbProbe(
      OneHopRecord(5, 1 << 20, 0, 80 * sim::kMillisecond));
  EXPECT_LT(registry.ScoreOf(5), 0.1);

  // Lost probes shrink the reachability factor.
  for (int i = 0; i < 3; ++i) {
    registry.RecordEmission({4});
    registry.RecordLoss({4});
  }
  EXPECT_LT(registry.ScoreOf(4), healthy);
  const auto& state = registry.ships().at(4);
  EXPECT_EQ(state.expected_visits, 4u);
  EXPECT_EQ(state.missed_visits, 3u);
}

TEST(HealthRegistry, MirrorsDistributionsIntoStatsRegistry) {
  health::HealthConfig config;
  health::HealthRegistry registry(config);
  sim::StatsRegistry stats;
  registry.AbsorbProbe(OneHopRecord(2, 256, 0, 5000), &stats);
  EXPECT_EQ(stats.GetHistogram("health.hop_latency_ns").count(), 1u);
  EXPECT_EQ(stats.GetHistogram("health.queue_bytes").count(), 1u);
  registry.PublishScores(stats);
  EXPECT_GT(stats.GetGauge("health.score.2").value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.GetGauge("health.ships_tracked").value(), 1.0);
}

TEST(HealthRegistry, SaveRestoreRoundTripsExactly) {
  health::HealthConfig config;
  health::HealthRegistry registry(config);
  registry.RecordEmission({1, 2});
  registry.AbsorbProbe(OneHopRecord(1, 100, 0, 2000));
  registry.AbsorbProbe(OneHopRecord(2, 900, 0, 9000));
  registry.RecordLoss({2});

  health::HealthRegistry restored(config);
  restored.RestoreState(registry.SaveState());
  EXPECT_DOUBLE_EQ(restored.ScoreOf(1), registry.ScoreOf(1));
  EXPECT_DOUBLE_EQ(restored.ScoreOf(2), registry.ScoreOf(2));
  EXPECT_EQ(restored.hops_observed(), registry.hops_observed());
  EXPECT_EQ(restored.ships().at(2).missed_visits, 1u);
}

// ---- Anomaly rules ----------------------------------------------------------

TEST(AnomalyDetector, FlagsRoutingLoopsOncePerEpisode) {
  health::HealthConfig config;  // loop_repeats = 3
  health::AnomalyDetector detector(config);
  health::ProbeRecord record;
  record.probe_id = 9;
  health::HopSample hop;
  hop.ship = 2;
  for (int i = 0; i < 4; ++i) record.hops.push_back(hop);

  const auto fresh = detector.CheckRecord(record, 1000);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, health::HealthEventKind::kRoutingLoop);
  EXPECT_EQ(fresh[0].ship, 2u);
  EXPECT_DOUBLE_EQ(fresh[0].value, 4.0);
  // Same loop again: episode already active, no duplicate event.
  EXPECT_TRUE(detector.CheckRecord(record, 2000).empty());
  EXPECT_EQ(detector.events().size(), 1u);
}

TEST(AnomalyDetector, FlagsStarvedEeWhenMissesGrowWithoutExecutions) {
  health::HealthConfig config;
  config.min_samples = 1;
  health::HealthRegistry registry(config);
  health::AnomalyDetector detector(config);

  registry.AbsorbProbe(OneHopRecord(3, 0, 0, 1000, /*executions=*/2,
                                    /*misses=*/5));
  EXPECT_TRUE(detector.Evaluate(registry, 1000).empty());  // baseline

  registry.AbsorbProbe(OneHopRecord(3, 0, 2000, 3000, 2, 9));
  const auto fresh = detector.Evaluate(registry, 3000);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].kind, health::HealthEventKind::kStarvedEe);
  EXPECT_EQ(fresh[0].ship, 3u);
  EXPECT_DOUBLE_EQ(fresh[0].value, 4.0);  // 9 - 5 new misses

  // Executions resume: the episode clears, a later stall raises again.
  registry.AbsorbProbe(OneHopRecord(3, 0, 4000, 5000, 6, 9));
  EXPECT_TRUE(detector.Evaluate(registry, 5000).empty());
  registry.AbsorbProbe(OneHopRecord(3, 0, 6000, 7000, 6, 12));
  EXPECT_EQ(detector.Evaluate(registry, 7000).size(), 1u);
}

TEST(AnomalyDetector, SaveRestoreKeepsEventsAndEpisodes) {
  health::HealthConfig config;
  health::AnomalyDetector detector(config);
  health::ProbeRecord record;
  health::HopSample hop;
  hop.ship = 1;
  for (int i = 0; i < 5; ++i) record.hops.push_back(hop);
  ASSERT_EQ(detector.CheckRecord(record, 500).size(), 1u);

  health::AnomalyDetector restored(config);
  restored.RestoreState(detector.SaveState());
  ASSERT_EQ(restored.events().size(), 1u);
  EXPECT_EQ(restored.events()[0].detail, detector.events()[0].detail);
  // The active episode survived: no duplicate on re-check.
  EXPECT_TRUE(restored.CheckRecord(record, 600).empty());
}

// ---- Whole-network scenarios ------------------------------------------------

/// One replica of the wnscope-style demo world, optionally with the health
/// plane emitting probes.
struct World {
  sim::Simulator simulator;
  net::Topology topology;
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> network;
  std::unique_ptr<health::ProbePlane> plane;

  explicit World(bool probes, bool populate = true) {
    if (populate) topology = net::MakeGrid(3, 3);
    config.telemetry.enable_tracing = true;
    network = std::make_unique<wli::WanderingNetwork>(simulator, topology,
                                                      config, kSeed);
    if (populate) network->PopulateAllNodes();
    health::HealthConfig hconfig;
    hconfig.enable_probes = probes;
    hconfig.collector = 0;
    plane = std::make_unique<health::ProbePlane>(*network, hconfig, kSeed);
  }

  /// Workload driven by the network's own RNG — any extra draw or event
  /// perturbation by the probe plane would derail it visibly.
  void Drive(int begin, int end, bool probe_rounds) {
    const std::size_t n = topology.node_count();
    for (int i = begin; i < end; ++i) {
      const auto src =
          static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      auto dst =
          static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % n);
      (void)network->Inject(wli::Shuttle::Data(
          src, dst, {i, 3, 5}, static_cast<std::uint64_t>(i) + 1));
      simulator.RunAll();
      if (probe_rounds) {
        plane->RunRound();
        simulator.RunAll();
      }
      if (i % 8 == 7) {
        network->Pulse();
        simulator.RunAll();
      }
    }
  }
};

TEST(ProbeNeutrality, EnabledProbesChangeNoSimulationDecision) {
  World with_probes(/*probes=*/true);
  World without(/*probes=*/false);
  with_probes.Drive(0, 48, /*probe_rounds=*/true);
  without.Drive(0, 48, /*probe_rounds=*/true);  // rounds no-op: disabled

  // The probe run really probed…
  EXPECT_GT(with_probes.plane->probes_emitted(), 0u);
  EXPECT_GT(with_probes.plane->probes_absorbed(), 0u);
  EXPECT_GT(with_probes.plane->registry().hops_observed(), 0u);

  // …yet every decision stream is bit-identical: the network RNG, the
  // fabric's loss RNG and every ship's workload counters match the
  // probe-free twin exactly.
  EXPECT_EQ(with_probes.network->rng().SaveState(),
            without.network->rng().SaveState());
  EXPECT_EQ(with_probes.network->fabric().rng().SaveState(),
            without.network->fabric().rng().SaveState());
  without.network->ForEachShip([&](wli::Ship& ship) {
    const wli::Ship* twin = with_probes.network->ship(ship.id());
    ASSERT_NE(twin, nullptr);
    EXPECT_EQ(twin->shuttles_consumed(), ship.shuttles_consumed())
        << "ship " << ship.id();
    EXPECT_EQ(twin->shuttles_forwarded(), ship.shuttles_forwarded());
    EXPECT_EQ(twin->code_executions(), ship.code_executions());
    EXPECT_EQ(twin->code_misses(), ship.code_misses());
  });
  // Workload counters agree metric-for-metric (the probe run adds health.*
  // extras on top, which is the point of in-band observability).
  for (const auto& [name, counter] : without.network->stats().counters()) {
    EXPECT_EQ(with_probes.network->stats().GetCounter(name).value(),
              counter.value())
        << name;
  }
  EXPECT_EQ(with_probes.network->pulses(), without.network->pulses());
}

TEST(ProbeNeutrality, DisabledPlaneEmitsNothing) {
  World world(/*probes=*/false);
  world.plane->StartProbes(2 * sim::kSecond);
  world.Drive(0, 16, /*probe_rounds=*/false);
  world.simulator.RunAll();
  EXPECT_EQ(world.plane->probes_emitted(), 0u);
  EXPECT_EQ(world.plane->rounds(), 0u);
  EXPECT_TRUE(world.plane->registry().ships().empty());
}

TEST(HealthGenesis, CheckpointResumeReproducesReportByteForByte) {
  // Uninterrupted reference.
  World ref(/*probes=*/true);
  ref.Drive(0, 32, true);
  ref.Drive(32, 64, true);
  ref.plane->Evaluate();

  // Interrupted twin: run half, snapshot (health plane as an extra
  // section), restore into a fresh world, finish the run.
  World first(/*probes=*/true);
  first.Drive(0, 32, true);
  ASSERT_EQ(first.plane->pending_count(), 0u);  // quiescent, like shuttles
  genesis::TelemetryAdapter source_telemetry(first.network->telemetry());
  genesis::HealthAdapter source_adapter(*first.plane);
  genesis::GenesisManager source(*first.network);
  ASSERT_TRUE(source.RegisterExtra(source_telemetry).ok());
  ASSERT_TRUE(source.RegisterExtra(source_adapter).ok());
  auto snapshot = source.CaptureFull();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  World resumed(/*probes=*/true, /*populate=*/false);
  genesis::TelemetryAdapter resumed_telemetry(resumed.network->telemetry());
  genesis::HealthAdapter resumed_adapter(*resumed.plane);
  genesis::GenesisManager target(*resumed.network);
  // Spans must ride along: the registry's span cursor points into the
  // collector, so restoring health without telemetry desynchronises it.
  ASSERT_TRUE(target.RegisterExtra(resumed_telemetry).ok());
  ASSERT_TRUE(target.RegisterExtra(resumed_adapter).ok());
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());
  resumed.Drive(32, 64, true);
  resumed.plane->Evaluate();

  // Same probes, same scores, same events — the serialized report and the
  // health snapshot section are byte-identical to the uninterrupted run.
  EXPECT_EQ(resumed.plane->probes_emitted(), ref.plane->probes_emitted());
  EXPECT_EQ(resumed.plane->probes_absorbed(), ref.plane->probes_absorbed());
  std::ostringstream ref_report, resumed_report;
  health::WriteHealthJsonl(ref.plane->BuildReport(), ref_report);
  health::WriteHealthJsonl(resumed.plane->BuildReport(), resumed_report);
  EXPECT_EQ(resumed_report.str(), ref_report.str());
  genesis::HealthAdapter ref_adapter(*ref.plane);
  EXPECT_EQ(resumed_adapter.Save(), ref_adapter.Save());
}

TEST(AnomalyScenario, DegradedShipIsFlaggedDeterministically) {
  // Seeded degraded-ship golden: ship 5 dies mid-run; probes that name it
  // as a waypoint vanish, and the detector must flag exactly that ship.
  auto run = [](bool degrade) {
    World world(/*probes=*/true);
    net::FailureInjector failures(world.simulator, world.topology,
                                  Rng(kSeed ^ 0xFA17ED));
    if (degrade) failures.FailNode(5, 1, /*outage=*/0);
    world.plane->StartProbes(2 * sim::kSecond);
    world.simulator.RunUntil(2 * sim::kSecond);
    world.simulator.RunAll();
    world.plane->Evaluate();
    return world.plane->BuildReport();
  };

  const health::HealthReport healthy = run(false);
  EXPECT_TRUE(healthy.events.empty());
  EXPECT_EQ(healthy.summary.probes_lost, 0u);

  const health::HealthReport degraded = run(true);
  EXPECT_GT(degraded.summary.probes_lost, 0u);
  ASSERT_FALSE(degraded.events.empty());
  for (const health::HealthEvent& event : degraded.events) {
    EXPECT_EQ(event.kind, health::HealthEventKind::kDegradedShip);
    EXPECT_EQ(event.ship, 5u);
  }
  // Determinism golden: the same degraded run reproduces the same report.
  const health::HealthReport again = run(true);
  std::ostringstream a, b;
  health::WriteHealthJsonl(degraded, a);
  health::WriteHealthJsonl(again, b);
  EXPECT_EQ(a.str(), b.str());
}

// ---- Reports and gates ------------------------------------------------------

health::HealthReport SmallReport() {
  health::HealthReport report;
  health::ShipReportEntry ship;
  ship.ship = 4;
  ship.score = 0.9;
  ship.samples = 12;
  report.ships.push_back(ship);
  health::HealthEvent event;
  event.time = 777;
  event.kind = health::HealthEventKind::kRoutingLoop;
  event.ship = 4;
  event.detail = "probe 1 crossed ship 4 \"loop\"";
  report.events.push_back(event);
  report.summary.probes_emitted = 10;
  report.summary.probes_absorbed = 9;
  report.summary.events = 1;
  return report;
}

TEST(HealthReport, JsonlRoundTripsAndSelfDiffsClean) {
  const health::HealthReport report = SmallReport();
  std::stringstream stream;
  health::WriteHealthJsonl(report, stream);
  const auto parsed = health::ParseHealthJsonl(stream);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->ships.size(), 1u);
  EXPECT_EQ(parsed->ships[0].ship, 4u);
  EXPECT_DOUBLE_EQ(parsed->ships[0].score, 0.9);
  ASSERT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->events[0].kind, health::HealthEventKind::kRoutingLoop);
  EXPECT_EQ(parsed->events[0].detail, report.events[0].detail);
  EXPECT_EQ(parsed->summary.probes_absorbed, 9u);

  EXPECT_TRUE(health::DiffHealthReports(*parsed, *parsed, {}).empty());
  // Truncated stream (no summary line) is not a report.
  std::stringstream truncated("{\"kind\":\"ship\",\"ship\":4}\n");
  EXPECT_FALSE(health::ParseHealthJsonl(truncated).has_value());
}

TEST(HealthReport, DiffFlagsScoreDropsVanishedShipsAndNewEvents) {
  const health::HealthReport baseline = SmallReport();
  health::HealthReport current = SmallReport();
  current.ships[0].score = 0.5;  // beyond the 0.05 band
  health::HealthEvent extra;
  extra.kind = health::HealthEventKind::kDegradedShip;
  current.events.push_back(extra);
  auto regressions = health::DiffHealthReports(baseline, current, {});
  ASSERT_EQ(regressions.size(), 2u);
  EXPECT_NE(regressions[0].find("score dropped"), std::string::npos);
  EXPECT_NE(regressions[1].find("degraded-ship"), std::string::npos);

  current = SmallReport();
  current.ships.clear();
  regressions = health::DiffHealthReports(baseline, current, {});
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_NE(regressions[0].find("disappeared"), std::string::npos);
}

// ---- MemGrowthDetector ------------------------------------------------------

TEST(MemGrowth, MonotoneGrowthPastSlackRaisesOneEpisode) {
  health::MemGrowthConfig config;
  config.consecutive_windows = 3;
  config.slack_bytes = 1000;
  health::MemGrowthDetector detector(config);
  const auto domain = telemetry::mem::Domain::kShuttlePool;

  // First sample seeds; two growing windows are below the streak threshold.
  EXPECT_FALSE(detector.Observe(domain, 100, 1).has_value());
  EXPECT_FALSE(detector.Observe(domain, 600, 2).has_value());
  EXPECT_FALSE(detector.Observe(domain, 1000, 3).has_value());
  // Third growing window, net growth 1400 > slack: one event, tagged with
  // the domain index and the mem_growth kind.
  const auto event = detector.Observe(domain, 1500, 4);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, health::HealthEventKind::kMemGrowth);
  EXPECT_EQ(event->ship, static_cast<net::NodeId>(domain));
  EXPECT_DOUBLE_EQ(event->value, 1400.0);
  EXPECT_DOUBLE_EQ(event->threshold, 1000.0);
  EXPECT_NE(event->detail.find("mem.shuttle_pool"), std::string::npos);

  // Continued growth inside the same episode stays deduplicated.
  EXPECT_FALSE(detector.Observe(domain, 2000, 5).has_value());
  EXPECT_FALSE(detector.Observe(domain, 2500, 6).has_value());
  EXPECT_EQ(detector.events().size(), 1u);

  // A shrink ends the episode; a fresh monotone run re-raises.
  EXPECT_FALSE(detector.Observe(domain, 500, 7).has_value());
  EXPECT_FALSE(detector.Observe(domain, 1000, 8).has_value());
  EXPECT_FALSE(detector.Observe(domain, 1500, 9).has_value());
  EXPECT_TRUE(detector.Observe(domain, 2000, 10).has_value());
  EXPECT_EQ(detector.events().size(), 2u);
}

TEST(MemGrowth, SlackAbsorbsSteadyStateWobbleAndFlatSeries) {
  health::MemGrowthConfig config;
  config.consecutive_windows = 2;
  config.slack_bytes = 1 << 20;
  health::MemGrowthDetector detector(config);
  const auto domain = telemetry::mem::Domain::kCalendarQueue;
  // Growing every window but never beyond the slack: silent.
  std::uint64_t bytes = 0;
  for (sim::TimePoint t = 1; t <= 64; ++t) {
    bytes += 64;
    EXPECT_FALSE(detector.Observe(domain, bytes, t).has_value());
  }
  // Flat series: silent, and it resets the growth run.
  for (sim::TimePoint t = 65; t <= 80; ++t) {
    EXPECT_FALSE(detector.Observe(domain, bytes, t).has_value());
  }
  EXPECT_TRUE(detector.events().empty());
}

TEST(MemGrowth, ObserveBlockSweepsEveryDomain) {
  health::MemGrowthConfig config;
  config.consecutive_windows = 2;
  config.slack_bytes = 100;
  health::MemGrowthDetector detector(config);
  telemetry::mem::ThreadBlock block{};
  auto& shuttle = block.counters[static_cast<std::size_t>(
      telemetry::mem::Domain::kShuttlePool)];
  auto& mailbox = block.counters[static_cast<std::size_t>(
      telemetry::mem::Domain::kMailbox)];
  for (int window = 0; window < 3; ++window) {
    shuttle.live_bytes += 4096;
    mailbox.live_bytes += 2048;
    const auto fresh = detector.ObserveBlock(block, window + 1);
    if (window < 2) {
      EXPECT_TRUE(fresh.empty());
    } else {
      // Both domains cross streak + slack on the same sweep.
      ASSERT_EQ(fresh.size(), 2u);
      EXPECT_EQ(fresh[0].ship, static_cast<net::NodeId>(
                                   telemetry::mem::Domain::kShuttlePool));
      EXPECT_EQ(fresh[1].ship,
                static_cast<net::NodeId>(telemetry::mem::Domain::kMailbox));
    }
  }
}

TEST(MemGrowth, KindNameRoundTrips) {
  EXPECT_EQ(health::HealthEventKindName(health::HealthEventKind::kMemGrowth),
            "mem_growth");
  const auto kind = health::HealthEventKindFromName("mem_growth");
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, health::HealthEventKind::kMemGrowth);
}

TEST(BenchGate, ComparesMetricsWithToleranceAndIgnores) {
  std::stringstream base_json(
      "{\n  \"dispatch_count\": 1000,\n  \"wall_seconds\": 1.5,\n"
      "  \"cache_hits\": 80\n}\n");
  const auto baseline = health::ParseFlatJson(base_json);
  ASSERT_EQ(baseline.size(), 3u);
  EXPECT_DOUBLE_EQ(baseline.at("dispatch_count"), 1000.0);

  // Within tolerance, wall-clock drift ignored: gate passes.
  health::BenchGateOptions options;
  options.tolerance = 0.25;
  std::map<std::string, double> current = {{"dispatch_count", 900.0},
                                           {"wall_seconds", 99.0},
                                           {"cache_hits", 80.0}};
  EXPECT_TRUE(health::CompareBenchMetrics(baseline, current, options).empty());

  // Real drift beyond the band and a vanished metric both gate.
  current["dispatch_count"] = 500.0;
  current.erase("cache_hits");
  const auto regressions =
      health::CompareBenchMetrics(baseline, current, options);
  ASSERT_EQ(regressions.size(), 2u);
  EXPECT_NE(regressions[0].find("cache_hits"), std::string::npos);
  EXPECT_NE(regressions[1].find("dispatch_count"), std::string::npos);
}

}  // namespace
}  // namespace viator
