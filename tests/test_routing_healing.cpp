// Tests for the adaptive ad-hoc routing protocol (§E application), the
// static-routing baseline, self-healing (footnote 18) and the elastic-
// control baseline.
#include <gtest/gtest.h>

#include "baselines/elastic_control.h"
#include "core/wandering_network.h"
#include "net/failure.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "services/boosting.h"
#include "services/routing.h"
#include "services/security_mgmt.h"
#include "sim/simulator.h"

namespace viator::services {
namespace {

struct RoutingFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology;
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> wn;

  void BuildLine(std::size_t n) {
    topology = net::MakeLine(n);
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 31);
    wn->PopulateAllNodes();
  }
};

TEST_F(RoutingFixture, DiscoveryFindsRouteAndDelivers) {
  BuildLine(5);
  AdaptiveAdHocRouter router(*wn, {});
  int delivered = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  ASSERT_TRUE(router.Send(0, 4, {42}, 1).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(router.discoveries(), 1u);
  EXPECT_GE(router.rreq_sent(), 1u);
  EXPECT_GE(router.rrep_sent(), 1u);
  EXPECT_TRUE(router.HasRoute(0, 4));
}

TEST_F(RoutingFixture, SecondSendUsesCachedRoute) {
  BuildLine(5);
  AdaptiveAdHocRouter router(*wn, {});
  int delivered = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  ASSERT_TRUE(router.Send(0, 4, {1}, 1).ok());
  simulator.RunAll();
  const auto discoveries_after_first = router.discoveries();
  ASSERT_TRUE(router.Send(0, 4, {2}, 2).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(router.discoveries(), discoveries_after_first);  // no new flood
}

TEST_F(RoutingFixture, RouteExpiresAfterLifetime) {
  BuildLine(4);
  AdaptiveAdHocRouter::Config cfg;
  cfg.route_lifetime = 100 * sim::kMillisecond;
  AdaptiveAdHocRouter router(*wn, cfg);
  ASSERT_TRUE(router.Send(0, 3, {1}, 1).ok());
  simulator.RunAll();
  ASSERT_TRUE(router.HasRoute(0, 3));
  simulator.RunUntil(simulator.now() + sim::kSecond);
  EXPECT_FALSE(router.HasRoute(0, 3));  // PMP: unrefreshed facts die
}

TEST_F(RoutingFixture, BrokenLinkTriggersRediscovery) {
  topology = net::MakeRing(6);
  wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                               31);
  wn->PopulateAllNodes();
  AdaptiveAdHocRouter router(*wn, {});
  int delivered = 0;
  wn->ship(3)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  ASSERT_TRUE(router.Send(0, 3, {1}, 1).ok());
  simulator.RunAll();
  ASSERT_EQ(delivered, 1);
  // Break the link the route uses (0-1 or 0-5 depending on RREP order);
  // break both of node 0's links' first hops except the alternative route
  // still exists around the ring. Take the current next hop down.
  // Find next hop by probing: break link 0-1.
  const auto link01 = topology.FindLink(0, 1);
  ASSERT_TRUE(link01.has_value());
  topology.SetLinkUp(*link01, false);
  ASSERT_TRUE(router.Send(0, 3, {2}, 2).ok());
  simulator.RunAll();
  ASSERT_TRUE(router.Send(0, 3, {3}, 3).ok());
  simulator.RunAll();
  // At least one of the two post-failure sends arrives via the other arc.
  EXPECT_GE(delivered, 2);
}

TEST_F(RoutingFixture, UnreachableDestinationDropsAfterBufferFill) {
  BuildLine(3);
  topology.SetLinkUp(1, false);  // 2 unreachable
  AdaptiveAdHocRouter::Config cfg;
  cfg.max_buffered_per_node = 2;
  AdaptiveAdHocRouter router(*wn, cfg);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(router.Send(0, 2, {i}, i).ok());
  }
  simulator.RunAll();
  EXPECT_GE(router.data_dropped_no_route(), 3u);
}

TEST_F(RoutingFixture, AdaptiveBeatsStaticUnderChurn) {
  // Ring with links failing over time; static tables go stale, adaptive
  // rediscovers. This is the paper's core mobility claim in miniature.
  auto run = [&](bool adaptive) {
    sim::Simulator sim_local;
    net::Topology topo = net::MakeRing(8);
    wli::WnConfig cfg_local;
    wli::WanderingNetwork net_local(sim_local, topo, cfg_local, 5);
    net_local.PopulateAllNodes();
    std::unique_ptr<StaticRouter> static_router;
    std::unique_ptr<AdaptiveAdHocRouter> adaptive_router;
    AdaptiveAdHocRouter::Config rcfg;
    rcfg.route_lifetime = 300 * sim::kMillisecond;
    if (adaptive) {
      adaptive_router = std::make_unique<AdaptiveAdHocRouter>(net_local, rcfg);
    } else {
      static_router = std::make_unique<StaticRouter>(net_local);
      static_router->Install();
    }
    int delivered = 0;
    net_local.ship(4)->SetDeliverySink(
        [&](wli::Ship&, const wli::Shuttle& s) {
          if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
        });
    // Fail 0-1 at t=1s (ring still connected the other way).
    const auto link01 = topo.FindLink(0, 1);
    sim_local.ScheduleAt(sim::kSecond,
                         [&topo, link01] { topo.SetLinkUp(*link01, false); });
    // One message every 100 ms for 4 s.
    for (int i = 0; i < 40; ++i) {
      sim_local.ScheduleAt(i * 100 * sim::kMillisecond, [&, i] {
        if (adaptive) {
          (void)adaptive_router->Send(0, 4, {i}, i);
        } else {
          (void)net_local.Inject(wli::Shuttle::Data(0, 4, {i}, i));
        }
      });
    }
    sim_local.RunAll();
    return delivered;
  };
  const int adaptive_delivered = run(true);
  const int static_delivered = run(false);
  EXPECT_GT(adaptive_delivered, static_delivered);
  EXPECT_GE(adaptive_delivered, 35);  // near-full delivery
  EXPECT_LE(static_delivered, 15);    // stale after the failure
}

TEST_F(RoutingFixture, ControlOverheadIsCounted) {
  BuildLine(6);
  AdaptiveAdHocRouter router(*wn, {});
  ASSERT_TRUE(router.Send(0, 5, {1}, 1).ok());
  simulator.RunAll();
  EXPECT_GT(router.control_bytes(), 0u);
}

// ---- Distance-vector router ----

TEST_F(RoutingFixture, DvConvergesAndRoutes) {
  BuildLine(5);
  DistanceVectorRouter dv(*wn, {});
  // No routes before any advertisement (proactive: drop, don't buffer).
  ASSERT_TRUE(dv.Send(0, 4, {1}, 1).ok());
  simulator.RunAll();
  EXPECT_EQ(dv.dropped_no_route(), 1u);
  // After enough rounds for 4 hops of propagation, routes exist.
  for (int round = 0; round < 5; ++round) {
    dv.AdvertiseRound();
    simulator.RunAll();
  }
  EXPECT_TRUE(dv.HasRoute(0, 4));
  EXPECT_EQ(dv.MetricTo(0, 4), 4u);
  int delivered = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  ASSERT_TRUE(dv.Send(0, 4, {2}, 2).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 1);
}

TEST_F(RoutingFixture, DvConvergenceTakesOneRoundPerHop) {
  BuildLine(6);
  DistanceVectorRouter dv(*wn, {});
  for (int round = 1; round <= 5; ++round) {
    dv.AdvertiseRound();
    simulator.RunAll();
    // After r rounds node 0 knows destinations up to r hops away.
    EXPECT_TRUE(dv.HasRoute(0, static_cast<net::NodeId>(round)));
    if (round < 5) {
      EXPECT_FALSE(dv.HasRoute(0, static_cast<net::NodeId>(round + 1)));
    }
  }
}

TEST_F(RoutingFixture, DvRoutesExpireWithoutRefresh) {
  BuildLine(3);
  DistanceVectorRouter::Config cfg;
  cfg.route_lifetime = 300 * sim::kMillisecond;
  DistanceVectorRouter dv(*wn, cfg);
  dv.AdvertiseRound();
  simulator.RunAll();
  dv.AdvertiseRound();
  simulator.RunAll();
  ASSERT_TRUE(dv.HasRoute(0, 2));
  simulator.RunUntil(simulator.now() + sim::kSecond);
  EXPECT_FALSE(dv.HasRoute(0, 2));
}

TEST_F(RoutingFixture, DvHealsAroundFailureAfterRounds) {
  topology = net::MakeRing(6);
  wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                               31);
  wn->PopulateAllNodes();
  DistanceVectorRouter::Config cfg;
  cfg.route_lifetime = 400 * sim::kMillisecond;
  cfg.advertise_interval = 100 * sim::kMillisecond;
  DistanceVectorRouter dv(*wn, cfg);
  dv.Start(10 * sim::kSecond);
  simulator.RunUntil(sim::kSecond);
  ASSERT_TRUE(dv.HasRoute(0, 3));
  const auto link01 = topology.FindLink(0, 1);
  ASSERT_TRUE(link01.has_value());
  topology.SetLinkUp(*link01, false);
  // A few advertisement periods later the stale route expired and the
  // around-the-ring route took over.
  simulator.RunUntil(3 * sim::kSecond);
  ASSERT_TRUE(dv.HasRoute(0, 3));
  int delivered = 0;
  wn->ship(3)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  ASSERT_TRUE(dv.Send(0, 3, {1}, 1).ok());
  simulator.RunUntil(10 * sim::kSecond);
  EXPECT_EQ(delivered, 1);
}

// ---- ARQ booster ----

TEST_F(RoutingFixture, ArqDeliversEverythingOverLossyLink) {
  net::LinkConfig clean;
  net::LinkConfig lossy;
  lossy.loss_probability = 0.3;
  topology = net::Topology();
  topology.AddNodes(4);
  topology.AddLink(0, 1, clean);
  topology.AddLink(1, 2, lossy);
  topology.AddLink(2, 3, clean);
  wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                               31);
  wn->PopulateAllNodes();
  ArqBooster::Config cfg;
  cfg.ingress = 1;
  cfg.egress = 2;
  cfg.final_destination = 3;
  cfg.max_retries = 10;
  ArqBooster arq(*wn, cfg);
  int delivered = 0;
  wn->ship(3)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(arq.SendData(1, i).ok());
  }
  simulator.RunAll();
  EXPECT_EQ(delivered, 50);
  EXPECT_GT(arq.retransmissions(), 0u);
  EXPECT_EQ(arq.acked(), 50u);
  EXPECT_EQ(arq.given_up(), 0u);
}

TEST_F(RoutingFixture, ArqNoDuplicateDeliveries) {
  // Lossless: every word delivered exactly once even though ACKs and data
  // share the path.
  BuildLine(4);
  ArqBooster::Config cfg;
  cfg.ingress = 0;
  cfg.egress = 2;
  cfg.final_destination = 3;
  ArqBooster arq(*wn, cfg);
  int delivered = 0;
  wn->ship(3)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
  });
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(arq.SendData(1, i).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(arq.retransmissions(), 0u);
}

TEST_F(RoutingFixture, ArqGivesUpOnDeadSegment) {
  BuildLine(4);
  topology.SetLinkUp(1, false);  // segment 1-2 dead
  ArqBooster::Config cfg;
  cfg.ingress = 1;
  cfg.egress = 2;
  cfg.final_destination = 3;
  cfg.max_retries = 2;
  ArqBooster arq(*wn, cfg);
  ASSERT_TRUE(arq.SendData(1, 7).ok());
  simulator.RunAll();
  EXPECT_EQ(arq.given_up(), 1u);
  EXPECT_EQ(arq.acked(), 0u);
}

// ---- Self-healing ----

struct HealingFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(3, 3);
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> wn;

  void Build() {
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 13);
    wn->PopulateAllNodes();
  }
};

TEST_F(HealingFixture, HealRegrowsFunctionsOnNeighbor) {
  Build();
  wli::NetFunction fn;
  fn.name = "critical-cache";
  fn.role = node::FirstLevelRole::kCaching;
  const auto id = wn->DeployFunction(4, fn);  // center of the grid
  wn->ship(4)->facts().Touch(77, 7, 5.0, 0);

  SelfHealingCoordinator healer(*wn, {});
  healer.CheckpointAll();
  topology.SetNodeUp(4, false);
  const auto regrown = healer.Heal(4);
  EXPECT_EQ(regrown, 1u);
  const auto new_host = wn->placements().at(id);
  EXPECT_NE(new_host, 4u);
  EXPECT_TRUE(topology.IsNodeUp(new_host));
  // The genome carried the fact along.
  EXPECT_EQ(wn->ship(new_host)->facts().Get(77),
            std::optional<std::int64_t>(7));
  EXPECT_EQ(wn->ship(new_host)->os().current_role(),
            node::FirstLevelRole::kCaching);
}

TEST_F(HealingFixture, HealWithoutCheckpointDoesNothing) {
  Build();
  SelfHealingCoordinator healer(*wn, {});
  topology.SetNodeUp(4, false);
  EXPECT_EQ(healer.Heal(4), 0u);
}

TEST_F(HealingFixture, EndToEndFailureDetectionAndRecovery) {
  Build();
  wli::NetFunction fn;
  fn.name = "svc";
  fn.role = node::FirstLevelRole::kFusion;
  wn->DeployFunction(4, fn);

  SelfHealingCoordinator::Config hcfg;
  hcfg.detection_delay = 50 * sim::kMillisecond;
  SelfHealingCoordinator healer(*wn, hcfg);
  healer.CheckpointAll();

  net::FailureInjector injector(simulator, topology, Rng(9));
  injector.set_observer([&](const char* kind, std::uint32_t id, bool up) {
    healer.OnFailureEvent(kind, id, up);
  });
  injector.FailNode(4, sim::kSecond, /*outage=*/0);
  simulator.RunAll();
  EXPECT_EQ(healer.heals(), 1u);
  // Recovery completed detection_delay after the failure.
  EXPECT_EQ(healer.last_heal_time(), sim::kSecond + hcfg.detection_delay);
}

TEST_F(HealingFixture, LinkFailuresDoNotTriggerHeal) {
  Build();
  SelfHealingCoordinator healer(*wn, {});
  healer.CheckpointAll();
  healer.OnFailureEvent("link", 0, false);
  simulator.RunAll();
  EXPECT_EQ(healer.heals(), 0u);
}

// ---- Elastic-control baseline ----

TEST_F(HealingFixture, ElasticControlSwitchesViaController) {
  Build();
  baselines::ElasticController controller(*wn, /*controller=*/8);
  EXPECT_TRUE(controller.RequestRoleSwitch(0, node::FirstLevelRole::kFusion));
  simulator.RunAll();
  EXPECT_EQ(controller.switches_applied(), 1u);
  EXPECT_EQ(wn->ship(0)->os().current_role(), node::FirstLevelRole::kFusion);
}

TEST_F(HealingFixture, ElasticControllerIsSinglePointOfFailure) {
  Build();
  baselines::ElasticController controller(*wn, 8);
  topology.SetNodeUp(8, false);
  EXPECT_FALSE(
      controller.RequestRoleSwitch(0, node::FirstLevelRole::kFusion));
  simulator.RunAll();
  EXPECT_EQ(controller.switches_applied(), 0u);
  EXPECT_EQ(controller.requests_lost(), 1u);
}

TEST_F(HealingFixture, ElasticSwitchIsSlowerThanLocal) {
  Build();
  baselines::ElasticController controller(*wn, 8);
  // Local (autopoietic) switch: immediate.
  const auto t0 = simulator.now();
  ASSERT_TRUE(wn->ship(0)
                  ->SwitchRole(node::FirstLevelRole::kFission,
                               node::SwitchMechanism::kResidentSoftware)
                  .ok());
  EXPECT_EQ(simulator.now(), t0);  // no network round trip
  // Elastic switch needs the controller round trip.
  ASSERT_TRUE(controller.RequestRoleSwitch(0, node::FirstLevelRole::kFusion));
  simulator.RunAll();
  EXPECT_GT(simulator.now(), t0);
  EXPECT_EQ(wn->ship(0)->os().current_role(), node::FirstLevelRole::kFusion);
}

}  // namespace
}  // namespace viator::services
