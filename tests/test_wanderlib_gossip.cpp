// Tests for the wanderlib standard programs, the gossip dissemination
// service and the function-usage ledger.
#include <gtest/gtest.h>

#include "core/ledger.h"
#include "core/wanderlib.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/gossip.h"
#include "sim/simulator.h"
#include "vm/verifier.h"

namespace viator {
namespace {

struct LibFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology = net::MakeRing(8);
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> wn;

  void Build() {
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 88);
    wn->PopulateAllNodes();
  }
};

// ---- wanderlib programs assemble, verify, and have stable digests ----

TEST(Wanderlib, AllProgramsVerify) {
  EXPECT_TRUE(wli::wanderlib::HeartbeatProbe(1, 2).ok());
  EXPECT_TRUE(wli::wanderlib::FactPlanter().ok());
  EXPECT_TRUE(wli::wanderlib::RoleBalancer(1024).ok());
  EXPECT_TRUE(wli::wanderlib::PayloadChecksum(9).ok());
  EXPECT_TRUE(wli::wanderlib::NeighborCensus(7).ok());
}

TEST(Wanderlib, DigestsAreStable) {
  const auto a = wli::wanderlib::PayloadChecksum(9);
  const auto b = wli::wanderlib::PayloadChecksum(9);
  const auto c = wli::wanderlib::PayloadChecksum(10);
  EXPECT_EQ(a->digest(), b->digest());
  EXPECT_NE(a->digest(), c->digest());
}

TEST_F(LibFixture, FactPlanterPlantsPairs) {
  Build();
  auto planter = wli::wanderlib::FactPlanter();
  ASSERT_TRUE(wn->PublishProgram(*planter, 0).ok());
  wli::Shuttle s = wli::Shuttle::Data(0, 3, {100, 11, 200, 22, 300, 33}, 1);
  s.code_digest = planter->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->ship(3)->facts().Get(100), std::optional<std::int64_t>(11));
  EXPECT_EQ(wn->ship(3)->facts().Get(200), std::optional<std::int64_t>(22));
  EXPECT_EQ(wn->ship(3)->facts().Get(300), std::optional<std::int64_t>(33));
}

TEST_F(LibFixture, ChecksumFoldsPayloadViaSubroutine) {
  Build();
  auto checksum = wli::wanderlib::PayloadChecksum(555);
  ASSERT_TRUE(wn->PublishProgram(*checksum, 0).ok());
  wli::Shuttle s = wli::Shuttle::Data(0, 2, {1, 2, 3}, 1);
  s.code_digest = checksum->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  // acc = ((7*31+1)*31+2)*31 + 3 = 209563.
  EXPECT_EQ(wn->ship(2)->facts().Get(555),
            std::optional<std::int64_t>(209563));
  EXPECT_EQ(wn->ship(2)->last_emissions(),
            (std::vector<std::int64_t>{209563}));
}

TEST_F(LibFixture, RoleBalancerSwitchesOnIdleHost) {
  Build();
  (void)wn->ship(4)->SwitchRole(node::FirstLevelRole::kFusion,
                                node::SwitchMechanism::kResidentSoftware);
  auto balancer = wli::wanderlib::RoleBalancer(1 << 20);
  ASSERT_TRUE(wn->PublishProgram(*balancer, 0).ok());
  wli::Shuttle s = wli::Shuttle::Data(0, 4, {0}, 1);
  s.code_digest = balancer->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  // Idle host (no backlog): balancer selects caching.
  EXPECT_EQ(wn->ship(4)->os().current_role(),
            node::FirstLevelRole::kCaching);
}

TEST_F(LibFixture, RoleBalancerShedsLoadOnCongestedHost) {
  // Custom net: fast ingress 0-1, slow egress 1-2 so ship 1 builds backlog.
  net::LinkConfig fast;
  net::LinkConfig slow;
  slow.bandwidth_bps = 64 * 1024;
  topology = net::Topology();
  topology.AddNodes(3);
  topology.AddLink(0, 1, fast);
  topology.AddLink(1, 2, slow);
  Build();
  // Fill ship 1's egress queue.
  for (int i = 0; i < 10; ++i) {
    std::vector<std::int64_t> bulk(256, i);
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(1, 2, bulk, 1)).ok());
  }
  ASSERT_GT(wn->fabric().QueuedBytesAt(1), 1024u);
  auto balancer = wli::wanderlib::RoleBalancer(/*threshold=*/1024);
  ASSERT_TRUE(wn->PublishProgram(*balancer, 0).ok());
  wli::Shuttle s = wli::Shuttle::Data(0, 1, {0}, 9);
  s.code_digest = balancer->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  // Step until the balancer shuttle has executed (before queues drain).
  while (wn->ship(1)->code_executions() == 0 && simulator.Step()) {
  }
  EXPECT_EQ(wn->ship(1)->os().current_role(), node::FirstLevelRole::kFusion);
  simulator.RunAll();
}

TEST_F(LibFixture, NeighborCensusStoresDegree) {
  Build();
  auto census = wli::wanderlib::NeighborCensus(777);
  ASSERT_TRUE(wn->PublishProgram(*census, 0).ok());
  wli::Shuttle s = wli::Shuttle::Data(0, 5, {0}, 1);
  s.code_digest = census->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->ship(5)->facts().Get(777),
            std::optional<std::int64_t>(2));  // ring degree
}

// ---- Gossip ----

TEST_F(LibFixture, GossipSpreadsAFactToFullCoverage) {
  Build();
  // Seed one heavy fact on one ship.
  wn->ship(0)->facts().Touch(4242, 99, 10.0, 0);
  services::GossipService::Config cfg;
  cfg.interval = 100 * sim::kMillisecond;
  cfg.fanout = 2;
  services::GossipService gossip(*wn, cfg, Rng(3));
  EXPECT_DOUBLE_EQ(gossip.Coverage(4242), 1.0 / 8.0);
  gossip.Start(5 * sim::kSecond);
  simulator.RunUntil(5 * sim::kSecond);
  EXPECT_DOUBLE_EQ(gossip.Coverage(4242), 1.0);
  EXPECT_GT(gossip.shuttles_sent(), 0u);
  // Every ship converged on the same value.
  wn->ForEachShip([](wli::Ship& ship) {
    EXPECT_EQ(ship.facts().Get(4242), std::optional<std::int64_t>(99));
  });
}

TEST_F(LibFixture, GossipKeepsFactsAliveAcrossSweeps) {
  config.fact_config.frequency_threshold_hz = 1.0;
  config.fact_config.window = sim::kSecond;
  config.pulse_interval = sim::kSecond;
  Build();
  wn->ship(0)->facts().Touch(7, 1, 10.0, 0);
  services::GossipService::Config cfg;
  cfg.interval = 200 * sim::kMillisecond;  // 5 Hz exchange
  services::GossipService gossip(*wn, cfg, Rng(3));
  gossip.Start(6 * sim::kSecond);
  wn->StartPulse(6 * sim::kSecond);
  simulator.RunUntil(6 * sim::kSecond);
  // Despite 1 Hz threshold sweeps, gossip refresh keeps the fact alive on
  // most of the ring.
  EXPECT_GT(gossip.Coverage(7), 0.5);
}

TEST_F(LibFixture, GossipWithoutFactsSendsNothing) {
  Build();
  services::GossipService gossip(*wn, {}, Rng(3));
  gossip.RunRound();
  EXPECT_EQ(gossip.shuttles_sent(), 0u);
}

// ---- Function usage ledger ----

TEST(Ledger, TracksEpisodesAndUses) {
  wli::FunctionUsageLedger ledger;
  ledger.RecordPlacement(1, 5, 0);
  ledger.RecordUse(1);
  ledger.RecordUse(1);
  ledger.RecordPlacement(1, 8, 10 * sim::kSecond);
  ledger.RecordUse(1);
  ASSERT_NE(ledger.EpisodesOf(1), nullptr);
  ASSERT_EQ(ledger.EpisodesOf(1)->size(), 2u);
  EXPECT_EQ(ledger.VisitCount(1), 2u);
  EXPECT_EQ(ledger.TotalUses(1), 3u);
  EXPECT_EQ(ledger.MostUsedHost(1), 5u);
  EXPECT_EQ((*ledger.EpisodesOf(1))[0].to, 10 * sim::kSecond);
  EXPECT_EQ((*ledger.EpisodesOf(1))[1].to, 0u);  // still open
}

TEST(Ledger, MeanDwellCountsOpenEpisode) {
  wli::FunctionUsageLedger ledger;
  ledger.RecordPlacement(1, 0, 0);
  ledger.RecordPlacement(1, 1, 4 * sim::kSecond);
  // Episodes: [0,4s] closed, [4s, now=10s) open -> mean (4+6)/2 = 5 s.
  EXPECT_EQ(ledger.MeanDwell(1, 10 * sim::kSecond), 5 * sim::kSecond);
}

TEST(Ledger, RepeatedPlacementAtSameHostIsIdempotent) {
  wli::FunctionUsageLedger ledger;
  ledger.RecordPlacement(1, 3, 0);
  ledger.RecordPlacement(1, 3, sim::kSecond);
  EXPECT_EQ(ledger.VisitCount(1), 1u);
}

TEST(Ledger, RemovalClosesEpisode) {
  wli::FunctionUsageLedger ledger;
  ledger.RecordPlacement(1, 3, 0);
  ledger.RecordRemoval(1, 2 * sim::kSecond);
  EXPECT_EQ((*ledger.EpisodesOf(1))[0].to, 2 * sim::kSecond);
  // Use after removal is a no-op on the closed episode count... still
  // recorded against the last episode by design (late accounting).
  EXPECT_EQ(ledger.MeanDwell(1, 10 * sim::kSecond), 2 * sim::kSecond);
}

TEST_F(LibFixture, NetworkLedgerRecordsMigrationsAndUses) {
  Build();
  wli::NetFunction fn;
  fn.name = "tracked";
  fn.role = node::FirstLevelRole::kFusion;
  const auto id = wn->DeployFunction(1, fn);
  // Serve some traffic at host 1 (data shuttles to the fusion ship).
  for (int i = 0; i < 5; ++i) {
    (void)wn->Inject(wli::Shuttle::Data(0, 1, {i}, 1));
  }
  simulator.RunAll();
  EXPECT_EQ(wn->ledger().TotalUses(id), 5u);
  // Migrate and serve more traffic at the new host.
  ASSERT_TRUE(wn->MigrateFunction(id, 4).ok());
  simulator.RunAll();
  for (int i = 0; i < 3; ++i) {
    (void)wn->Inject(wli::Shuttle::Data(0, 4, {i}, 1));
  }
  simulator.RunAll();
  EXPECT_EQ(wn->ledger().VisitCount(id), 2u);
  EXPECT_EQ(wn->ledger().TotalUses(id), 8u);
  EXPECT_EQ(wn->ledger().MostUsedHost(id), 1u);
  const auto by_host = wn->ledger().UsageByHost();
  EXPECT_EQ(by_host.at(1), 5u);
  EXPECT_EQ(by_host.at(4), 3u);
}

TEST_F(LibFixture, LedgerRecordsExpiryAsRemoval) {
  Build();
  wli::NetFunction fn;
  fn.name = "mortal";
  fn.role = node::FirstLevelRole::kCaching;
  fn.fact_keys = {404};  // fact never exists
  const auto id = wn->DeployFunction(2, fn);
  simulator.RunUntil(sim::kSecond);
  wn->Pulse();
  ASSERT_NE(wn->ledger().EpisodesOf(id), nullptr);
  EXPECT_EQ(wn->ledger().EpisodesOf(id)->back().to, sim::kSecond);
}

}  // namespace
}  // namespace viator
