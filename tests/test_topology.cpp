// Tests for topology structure, generators, paths and dynamic link state.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "net/topology.h"

namespace viator::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  EXPECT_EQ(t.AddNodes(3), 0u);
  EXPECT_EQ(t.node_count(), 3u);
  const LinkId l = t.AddLink(0, 1);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_TRUE(t.IsLinkUp(l));
}

TEST(Topology, FindLinkIsSymmetric) {
  Topology t;
  t.AddNodes(2);
  const LinkId l = t.AddLink(0, 1);
  EXPECT_EQ(t.FindLink(0, 1), std::optional<LinkId>(l));
  EXPECT_EQ(t.FindLink(1, 0), std::optional<LinkId>(l));
}

TEST(Topology, DownLinkIsInvisible) {
  Topology t;
  t.AddNodes(2);
  const LinkId l = t.AddLink(0, 1);
  t.SetLinkUp(l, false);
  EXPECT_FALSE(t.FindLink(0, 1).has_value());
  EXPECT_TRUE(t.Neighbors(0).empty());
  t.SetLinkUp(l, true);
  EXPECT_TRUE(t.FindLink(0, 1).has_value());
}

TEST(Topology, NodeFailureHidesNeighbors) {
  Topology t;
  t.AddNodes(3);
  t.AddLink(0, 1);
  t.AddLink(1, 2);
  t.SetNodeUp(1, false);
  EXPECT_TRUE(t.Neighbors(0).empty());
  EXPECT_TRUE(t.ShortestPath(0, 2).empty());
  t.SetNodeUp(1, true);
  EXPECT_EQ(t.ShortestPath(0, 2).size(), 3u);
}

TEST(Topology, ShortestPathOnLine) {
  Topology t = MakeLine(5);
  const auto path = t.ShortestPath(0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
}

TEST(Topology, ShortestPathToSelf) {
  Topology t = MakeLine(3);
  EXPECT_EQ(t.ShortestPath(1, 1), std::vector<NodeId>{1});
}

TEST(Topology, ShortestPathDisconnected) {
  Topology t;
  t.AddNodes(4);
  t.AddLink(0, 1);
  t.AddLink(2, 3);
  EXPECT_TRUE(t.ShortestPath(0, 3).empty());
  EXPECT_EQ(t.NextHop(0, 3), kInvalidNode);
}

TEST(Topology, RingShortcut) {
  Topology t = MakeRing(6);
  // 0 -> 5 should go the short way around (1 hop).
  EXPECT_EQ(t.ShortestPath(0, 5).size(), 2u);
}

TEST(Topology, FastestPathPrefersLowLatency) {
  Topology t;
  t.AddNodes(3);
  LinkConfig slow;
  slow.latency = 100 * sim::kMillisecond;
  LinkConfig fast;
  fast.latency = sim::kMillisecond;
  t.AddLink(0, 2, slow);     // direct but slow
  t.AddLink(0, 1, fast);
  t.AddLink(1, 2, fast);     // two fast hops beat one slow hop
  const auto path = t.FastestPath(0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1u);
  // Hop-count shortest still prefers the direct link.
  EXPECT_EQ(t.ShortestPath(0, 2).size(), 2u);
}

TEST(Topology, NextHopIsSecondPathNode) {
  Topology t = MakeLine(4);
  EXPECT_EQ(t.NextHop(0, 3), 1u);
  EXPECT_EQ(t.NextHop(2, 0), 1u);
}

TEST(Topology, ConnectivityCheck) {
  Topology line = MakeLine(5);
  EXPECT_TRUE(line.IsConnected());
  Topology split;
  split.AddNodes(4);
  split.AddLink(0, 1);
  EXPECT_FALSE(split.IsConnected());
}

TEST(Topology, EmptyAndSingletonAreConnected) {
  Topology empty;
  EXPECT_TRUE(empty.IsConnected());
  Topology one;
  one.AddNodes(1);
  EXPECT_TRUE(one.IsConnected());
}

// ---- Generators ----

TEST(Generators, LineShape) {
  Topology t = MakeLine(10);
  EXPECT_EQ(t.node_count(), 10u);
  EXPECT_EQ(t.link_count(), 9u);
  EXPECT_EQ(t.Neighbors(0).size(), 1u);
  EXPECT_EQ(t.Neighbors(5).size(), 2u);
}

TEST(Generators, RingShape) {
  Topology t = MakeRing(10);
  EXPECT_EQ(t.link_count(), 10u);
  for (NodeId n = 0; n < 10; ++n) EXPECT_EQ(t.Neighbors(n).size(), 2u);
}

TEST(Generators, StarShape) {
  Topology t = MakeStar(9);
  EXPECT_EQ(t.link_count(), 8u);
  EXPECT_EQ(t.Neighbors(0).size(), 8u);
  EXPECT_EQ(t.Neighbors(3).size(), 1u);
}

TEST(Generators, GridShape) {
  Topology t = MakeGrid(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 links.
  EXPECT_EQ(t.link_count(), 17u);
  EXPECT_TRUE(t.IsConnected());
  // Corner has 2 neighbors, interior has 4.
  EXPECT_EQ(t.Neighbors(0).size(), 2u);
  EXPECT_EQ(t.Neighbors(5).size(), 4u);
}

class RandomTopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomTopologySweep, RandomGraphsAreConnected) {
  Rng rng(GetParam() * 31 + 7);
  Topology t = MakeRandom(GetParam(), 0.2, rng);
  EXPECT_EQ(t.node_count(), GetParam());
  EXPECT_TRUE(t.IsConnected());
}

TEST_P(RandomTopologySweep, ScaleFreeIsConnected) {
  Rng rng(GetParam() * 17 + 3);
  Topology t = MakeScaleFree(GetParam(), 2, rng);
  EXPECT_EQ(t.node_count(), GetParam());
  EXPECT_TRUE(t.IsConnected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTopologySweep,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Generators, ScaleFreeHasHubs) {
  Rng rng(5);
  Topology t = MakeScaleFree(200, 2, rng);
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < 200; ++n) {
    max_degree = std::max(max_degree, t.Neighbors(n).size());
  }
  // Preferential attachment should grow hubs well beyond the mean (~4).
  EXPECT_GE(max_degree, 10u);
}

TEST(Generators, GeometricRespectsRange) {
  std::vector<Position> pos = {{0, 0}, {1, 0}, {10, 0}};
  Topology t = MakeGeometric(pos, 2.0);
  EXPECT_TRUE(t.FindLink(0, 1).has_value());
  EXPECT_FALSE(t.FindLink(0, 2).has_value());
  EXPECT_FALSE(t.FindLink(1, 2).has_value());
}

TEST(Generators, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace viator::net
