// Tests for topology structure, generators, paths and dynamic link state.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace viator::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  EXPECT_EQ(t.AddNodes(3), 0u);
  EXPECT_EQ(t.node_count(), 3u);
  const LinkId l = t.AddLink(0, 1);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_TRUE(t.IsLinkUp(l));
}

TEST(Topology, FindLinkIsSymmetric) {
  Topology t;
  t.AddNodes(2);
  const LinkId l = t.AddLink(0, 1);
  EXPECT_EQ(t.FindLink(0, 1), std::optional<LinkId>(l));
  EXPECT_EQ(t.FindLink(1, 0), std::optional<LinkId>(l));
}

TEST(Topology, DownLinkIsInvisible) {
  Topology t;
  t.AddNodes(2);
  const LinkId l = t.AddLink(0, 1);
  t.SetLinkUp(l, false);
  EXPECT_FALSE(t.FindLink(0, 1).has_value());
  EXPECT_TRUE(t.Neighbors(0).empty());
  t.SetLinkUp(l, true);
  EXPECT_TRUE(t.FindLink(0, 1).has_value());
}

TEST(Topology, NodeFailureHidesNeighbors) {
  Topology t;
  t.AddNodes(3);
  t.AddLink(0, 1);
  t.AddLink(1, 2);
  t.SetNodeUp(1, false);
  EXPECT_TRUE(t.Neighbors(0).empty());
  EXPECT_TRUE(t.ShortestPath(0, 2).empty());
  t.SetNodeUp(1, true);
  EXPECT_EQ(t.ShortestPath(0, 2).size(), 3u);
}

TEST(Topology, ShortestPathOnLine) {
  Topology t = MakeLine(5);
  const auto path = t.ShortestPath(0, 4);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 4u);
}

TEST(Topology, ShortestPathToSelf) {
  Topology t = MakeLine(3);
  EXPECT_EQ(t.ShortestPath(1, 1), std::vector<NodeId>{1});
}

TEST(Topology, ShortestPathDisconnected) {
  Topology t;
  t.AddNodes(4);
  t.AddLink(0, 1);
  t.AddLink(2, 3);
  EXPECT_TRUE(t.ShortestPath(0, 3).empty());
  EXPECT_EQ(t.NextHop(0, 3), kInvalidNode);
}

TEST(Topology, RingShortcut) {
  Topology t = MakeRing(6);
  // 0 -> 5 should go the short way around (1 hop).
  EXPECT_EQ(t.ShortestPath(0, 5).size(), 2u);
}

TEST(Topology, FastestPathPrefersLowLatency) {
  Topology t;
  t.AddNodes(3);
  LinkConfig slow;
  slow.latency = 100 * sim::kMillisecond;
  LinkConfig fast;
  fast.latency = sim::kMillisecond;
  t.AddLink(0, 2, slow);     // direct but slow
  t.AddLink(0, 1, fast);
  t.AddLink(1, 2, fast);     // two fast hops beat one slow hop
  const auto path = t.FastestPath(0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1u);
  // Hop-count shortest still prefers the direct link.
  EXPECT_EQ(t.ShortestPath(0, 2).size(), 2u);
}

TEST(Topology, NextHopIsSecondPathNode) {
  Topology t = MakeLine(4);
  EXPECT_EQ(t.NextHop(0, 3), 1u);
  EXPECT_EQ(t.NextHop(2, 0), 1u);
}

TEST(Topology, ConnectivityCheck) {
  Topology line = MakeLine(5);
  EXPECT_TRUE(line.IsConnected());
  Topology split;
  split.AddNodes(4);
  split.AddLink(0, 1);
  EXPECT_FALSE(split.IsConnected());
}

TEST(Topology, EmptyAndSingletonAreConnected) {
  Topology empty;
  EXPECT_TRUE(empty.IsConnected());
  Topology one;
  one.AddNodes(1);
  EXPECT_TRUE(one.IsConnected());
}

// ---- Generators ----

TEST(Generators, LineShape) {
  Topology t = MakeLine(10);
  EXPECT_EQ(t.node_count(), 10u);
  EXPECT_EQ(t.link_count(), 9u);
  EXPECT_EQ(t.Neighbors(0).size(), 1u);
  EXPECT_EQ(t.Neighbors(5).size(), 2u);
}

TEST(Generators, RingShape) {
  Topology t = MakeRing(10);
  EXPECT_EQ(t.link_count(), 10u);
  for (NodeId n = 0; n < 10; ++n) EXPECT_EQ(t.Neighbors(n).size(), 2u);
}

TEST(Generators, StarShape) {
  Topology t = MakeStar(9);
  EXPECT_EQ(t.link_count(), 8u);
  EXPECT_EQ(t.Neighbors(0).size(), 8u);
  EXPECT_EQ(t.Neighbors(3).size(), 1u);
}

TEST(Generators, GridShape) {
  Topology t = MakeGrid(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 links.
  EXPECT_EQ(t.link_count(), 17u);
  EXPECT_TRUE(t.IsConnected());
  // Corner has 2 neighbors, interior has 4.
  EXPECT_EQ(t.Neighbors(0).size(), 2u);
  EXPECT_EQ(t.Neighbors(5).size(), 4u);
}

class RandomTopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomTopologySweep, RandomGraphsAreConnected) {
  Rng rng(GetParam() * 31 + 7);
  Topology t = MakeRandom(GetParam(), 0.2, rng);
  EXPECT_EQ(t.node_count(), GetParam());
  EXPECT_TRUE(t.IsConnected());
}

TEST_P(RandomTopologySweep, ScaleFreeIsConnected) {
  Rng rng(GetParam() * 17 + 3);
  Topology t = MakeScaleFree(GetParam(), 2, rng);
  EXPECT_EQ(t.node_count(), GetParam());
  EXPECT_TRUE(t.IsConnected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTopologySweep,
                         ::testing::Values(4, 8, 16, 32, 64));

TEST(Generators, ScaleFreeHasHubs) {
  Rng rng(5);
  Topology t = MakeScaleFree(200, 2, rng);
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < 200; ++n) {
    max_degree = std::max(max_degree, t.Neighbors(n).size());
  }
  // Preferential attachment should grow hubs well beyond the mean (~4).
  EXPECT_GE(max_degree, 10u);
}

TEST(Generators, GeometricRespectsRange) {
  std::vector<Position> pos = {{0, 0}, {1, 0}, {10, 0}};
  Topology t = MakeGeometric(pos, 2.0);
  EXPECT_TRUE(t.FindLink(0, 1).has_value());
  EXPECT_FALSE(t.FindLink(0, 2).has_value());
  EXPECT_FALSE(t.FindLink(1, 2).has_value());
}

TEST(Generators, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
}

// ---- Route cache -----------------------------------------------------------

// The acceptance gate for the cache: a cached next hop must equal the
// fresh-BFS-per-pair answer for EVERY (from, to) pair, across generator
// families and through arbitrary structural churn. The cache is only allowed
// to be faster, never different.
TEST(RouteCache, DecisionIdenticalToPerPairBfs) {
  Rng rng(20260808);
  std::vector<Topology> worlds;
  worlds.push_back(MakeLine(9));
  worlds.push_back(MakeRing(12));
  worlds.push_back(MakeStar(8));
  worlds.push_back(MakeGrid(4, 4));
  worlds.push_back(MakeRandom(14, 0.3, rng));
  for (Topology& t : worlds) {
    const auto check_all_pairs = [&t]() {
      for (NodeId from = 0; from < t.node_count(); ++from) {
        for (NodeId to = 0; to < t.node_count(); ++to) {
          ASSERT_EQ(t.NextHop(from, to), t.NextHopUncached(from, to))
              << "from=" << from << " to=" << to;
        }
      }
    };
    check_all_pairs();
    // Structural churn: drop a link, drop a node, heal both, add a chord.
    if (t.link_count() > 0) {
      t.SetLinkUp(0, false);
      check_all_pairs();
    }
    t.SetNodeUp(1, false);
    check_all_pairs();
    t.SetNodeUp(1, true);
    if (t.link_count() > 0) t.SetLinkUp(0, true);
    check_all_pairs();
    t.AddLink(0, static_cast<NodeId>(t.node_count() - 1));
    check_all_pairs();
  }
}

TEST(RouteCache, NeverRoutesOverDownLink) {
  // Warm the cache on a line, then cut the middle link: the cached first
  // hop 1 (toward 2) must disappear immediately, not after some TTL.
  Topology t = MakeLine(4);  // 0-1-2-3
  ASSERT_EQ(t.NextHop(0, 3), 1u);
  const LinkId middle = *t.FindLink(1, 2);
  t.SetLinkUp(middle, false);
  EXPECT_EQ(t.NextHop(0, 3), kInvalidNode);
  EXPECT_EQ(t.NextHop(1, 2), kInvalidNode);
  // Heal: the route must come back just as immediately.
  t.SetLinkUp(middle, true);
  EXPECT_EQ(t.NextHop(0, 3), 1u);
}

TEST(RouteCache, NodeFailureInvalidatesCachedRows) {
  // Ring 0-1-2-3-0: from 0 to 2 both ways tie, BFS order picks via 1. Kill
  // node 1 and the cached row must reroute via 3; revive and it flips back.
  Topology t = MakeRing(4);
  const NodeId via_before = t.NextHop(0, 2);
  ASSERT_EQ(via_before, t.NextHopUncached(0, 2));
  t.SetNodeUp(via_before, false);
  const NodeId via_after = t.NextHop(0, 2);
  EXPECT_NE(via_after, via_before);
  EXPECT_EQ(via_after, t.NextHopUncached(0, 2));
  t.SetNodeUp(via_before, true);
  EXPECT_EQ(t.NextHop(0, 2), via_before);
}

TEST(RouteCache, StatsCountHitsMissesInvalidations) {
  Topology t = MakeLine(4);
  EXPECT_EQ(t.route_cache_stats().hits, 0u);
  (void)t.NextHop(0, 3);  // cold: one fill
  EXPECT_EQ(t.route_cache_stats().misses, 1u);
  (void)t.NextHop(0, 2);  // same row: hit
  (void)t.NextHop(0, 1);
  EXPECT_EQ(t.route_cache_stats().hits, 2u);
  const std::uint64_t gen = t.generation();
  t.SetLinkUp(0, false);  // structural change bumps the generation
  EXPECT_GT(t.generation(), gen);
  (void)t.NextHop(0, 3);  // stale row: lazy invalidation + refill
  EXPECT_EQ(t.route_cache_stats().invalidations, 1u);
  EXPECT_EQ(t.route_cache_stats().misses, 2u);
  // Toggling to the same state is not a change and must not invalidate.
  t.SetLinkUp(0, false);
  (void)t.NextHop(0, 1);
  EXPECT_EQ(t.route_cache_stats().invalidations, 1u);
}

TEST(RouteCache, LruEvictionKeepsCapacityBound) {
  Topology t = MakeRing(6);
  t.SetRouteCacheCapacity(2);
  (void)t.NextHop(0, 3);
  (void)t.NextHop(1, 4);
  (void)t.NextHop(2, 5);  // evicts the LRU row (source 0)
  EXPECT_EQ(t.route_cache_stats().evictions, 1u);
  (void)t.NextHop(0, 3);  // source 0 must refill — and still be correct
  EXPECT_EQ(t.route_cache_stats().evictions, 2u);
  EXPECT_EQ(t.NextHop(0, 3), t.NextHopUncached(0, 3));
}

TEST(RouteCache, MobilityRewiringNeverServesStaleHops) {
  // An ad-hoc world whose radio graph is rewired every update: after each
  // rewire every cached next hop must match a fresh BFS, and no served hop
  // may cross a link the rewire took down.
  sim::Simulator simulator;
  Topology t;
  const std::size_t n = 10;
  t.AddNodes(n);
  RandomWaypointMobility::Config mob_config;
  mob_config.width_m = 300.0;
  mob_config.height_m = 300.0;
  mob_config.min_speed_mps = 40.0;  // fast, so links genuinely churn
  mob_config.max_speed_mps = 80.0;
  AdhocManager manager(simulator, t,
                       RandomWaypointMobility(n, mob_config, Rng(42)), 120.0,
                       100 * sim::kMillisecond, LinkConfig{});
  for (int round = 0; round < 12; ++round) {
    manager.Update();
    for (NodeId from = 0; from < n; ++from) {
      for (NodeId to = 0; to < n; ++to) {
        const NodeId hop = t.NextHop(from, to);
        ASSERT_EQ(hop, t.NextHopUncached(from, to))
            << "round=" << round << " from=" << from << " to=" << to;
        if (hop != kInvalidNode) {
          ASSERT_TRUE(t.FindLink(from, hop).has_value())
              << "served hop crosses a down/absent link";
        }
      }
    }
  }
  EXPECT_GT(manager.link_transitions(), 0u);
  EXPECT_GT(t.route_cache_stats().invalidations, 0u);
}

TEST(RouteCache, PublishesGaugesIntoRegistry) {
  sim::StatsRegistry stats;
  Topology t = MakeLine(4);
  (void)t.NextHop(0, 3);
  (void)t.NextHop(0, 2);
  PublishRouteCacheStats(stats, t);
  EXPECT_EQ(stats.gauges().at("net.route_cache.hits").value(), 1.0);
  EXPECT_EQ(stats.gauges().at("net.route_cache.misses").value(), 1.0);
  EXPECT_EQ(stats.gauges().at("net.route_cache.hit_ratio").value(), 0.5);
  EXPECT_EQ(stats.gauges().at("net.route_cache.invalidations").value(), 0.0);
  EXPECT_EQ(stats.gauges().at("net.route_cache.evictions").value(), 0.0);
  // Idempotent: publishing again overwrites, never accumulates.
  PublishRouteCacheStats(stats, t);
  EXPECT_EQ(stats.gauges().at("net.route_cache.hits").value(), 1.0);
}

TEST(RouteCache, DisabledCacheMatchesEnabled) {
  Rng rng(7);
  Topology cached = MakeRandom(12, 0.35, rng);
  Topology uncached = cached;
  uncached.SetRouteCacheEnabled(false);
  for (NodeId from = 0; from < cached.node_count(); ++from) {
    for (NodeId to = 0; to < cached.node_count(); ++to) {
      ASSERT_EQ(cached.NextHop(from, to), uncached.NextHop(from, to));
    }
  }
  // The disabled side must not have touched its cache counters.
  EXPECT_EQ(uncached.route_cache_stats().hits, 0u);
  EXPECT_EQ(uncached.route_cache_stats().misses, 0u);
}

}  // namespace
}  // namespace viator::net
