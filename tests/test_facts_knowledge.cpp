// Tests for PMP fact semantics: fact stores with frequency-threshold
// lifetimes, knowledge quanta and function tables, genetic transcoding.
#include <gtest/gtest.h>

#include "core/facts.h"
#include "core/genetic_transcoder.h"
#include "core/knowledge.h"

namespace viator::wli {
namespace {

FactStoreConfig TestConfig() {
  FactStoreConfig cfg;
  cfg.frequency_threshold_hz = 1.0;  // one touch/sec required
  cfg.window = 10 * sim::kSecond;
  cfg.capacity = 8;
  return cfg;
}

TEST(FactStore, TouchInsertsAndReads) {
  FactStore store(TestConfig());
  store.Touch(42, 7, 1.0, 0);
  EXPECT_EQ(store.Get(42), std::optional<std::int64_t>(7));
  EXPECT_EQ(store.Get(43), std::nullopt);
  EXPECT_EQ(store.size(), 1u);
}

TEST(FactStore, TouchUpdatesValue) {
  FactStore store(TestConfig());
  store.Touch(1, 10, 1.0, 0);
  store.Touch(1, 20, 1.0, sim::kSecond);
  EXPECT_EQ(store.Get(1), std::optional<std::int64_t>(20));
  EXPECT_EQ(store.size(), 1u);
}

TEST(FactStore, EraseRemoves) {
  FactStore store(TestConfig());
  store.Touch(1, 10, 1.0, 0);
  EXPECT_TRUE(store.Erase(1));
  EXPECT_FALSE(store.Erase(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(FactStore, SweepDeletesBelowThreshold) {
  // "As soon as a fact does not reach its frequency threshold, it is
  // deleted to leave space for new facts."
  FactStore store(TestConfig());
  // Hot fact: touched 20 times over the window -> 2 Hz > 1 Hz threshold.
  for (int i = 0; i < 20; ++i) {
    store.Touch(100, 1, 1.0, i * 500 * sim::kMillisecond);
  }
  // Cold fact: touched twice -> 0.2 Hz < 1 Hz.
  store.Touch(200, 2, 1.0, 0);
  store.Touch(200, 2, 1.0, sim::kSecond);
  const std::size_t deleted = store.Sweep(10 * sim::kSecond);
  EXPECT_EQ(deleted, 1u);
  EXPECT_NE(store.Find(100), nullptr);
  EXPECT_EQ(store.Find(200), nullptr);
  EXPECT_EQ(store.total_expirations(), 1u);
}

TEST(FactStore, WeightExtendsLifetime) {
  // Same touch pattern; the heavy ("high-bandwidth") fact survives where
  // the light one dies.
  FactStore store(TestConfig());
  store.Touch(1, 0, /*weight=*/0.5, 0);
  store.Touch(1, 0, 0.5, 5 * sim::kSecond);      // 0.2 touches/s * 0.5 = 0.1
  store.Touch(2, 0, /*weight=*/10.0, 0);
  store.Touch(2, 0, 10.0, 5 * sim::kSecond);     // 0.2 * 10 = 2 >= 1
  store.Sweep(10 * sim::kSecond);
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_NE(store.Find(2), nullptr);
}

TEST(FactStore, YoungFactsGetGracePeriod) {
  FactStore store(TestConfig());
  store.Touch(1, 0, 1.0, 9 * sim::kSecond);  // born just before the sweep
  store.Sweep(10 * sim::kSecond);
  EXPECT_NE(store.Find(1), nullptr);  // immature: spared
  store.Sweep(30 * sim::kSecond);
  EXPECT_EQ(store.Find(1), nullptr);  // mature and untouched: deleted
}

TEST(FactStore, RefreshedFactsSurviveManySweeps) {
  FactStore store(TestConfig());
  sim::TimePoint t = 0;
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (int i = 0; i < 15; ++i) {
      t += 600 * sim::kMillisecond;
      store.Touch(7, 1, 1.0, t);
    }
    EXPECT_EQ(store.Sweep(t), 0u);
  }
  EXPECT_NE(store.Find(7), nullptr);
}

TEST(FactStore, CapacityEvictsWeakest) {
  FactStoreConfig cfg = TestConfig();
  cfg.capacity = 3;
  FactStore store(cfg);
  // Three facts with increasing strength.
  store.Touch(1, 0, 0.1, 0);
  for (int i = 0; i < 5; ++i) store.Touch(2, 0, 1.0, i);
  for (int i = 0; i < 10; ++i) store.Touch(3, 0, 5.0, i);
  // Inserting a fourth evicts the weakest (key 1).
  store.Touch(4, 0, 1.0, sim::kSecond);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_NE(store.Find(3), nullptr);
  EXPECT_EQ(store.total_evictions(), 1u);
}

TEST(FactStore, TopByWeightIsSortedAndBounded) {
  FactStore store(TestConfig());
  store.Touch(1, 0, 3.0, 0);
  store.Touch(2, 0, 9.0, 0);
  store.Touch(3, 0, 6.0, 0);
  const auto top = store.TopByWeight(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 3u);
}

TEST(FactStore, KeysAreSorted) {
  FactStore store(TestConfig());
  store.Touch(9, 0, 1.0, 0);
  store.Touch(3, 0, 1.0, 0);
  store.Touch(6, 0, 1.0, 0);
  EXPECT_EQ(store.Keys(), (std::vector<FactKey>{3, 6, 9}));
}

// Property sweep over thresholds: facts touched at rate r survive iff
// r * weight >= threshold (up to window granularity).
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, SurvivalMatchesRate) {
  FactStoreConfig cfg;
  cfg.frequency_threshold_hz = GetParam();
  cfg.window = 10 * sim::kSecond;
  FactStore store(cfg);
  // Fact A at 2 Hz, fact B at 0.5 Hz, both weight 1.
  for (int i = 0; i < 20; ++i) store.Touch(1, 0, 1.0, i * 500 * sim::kMillisecond);
  for (int i = 0; i < 5; ++i) store.Touch(2, 0, 1.0, i * 2 * sim::kSecond);
  store.Sweep(10 * sim::kSecond);
  EXPECT_EQ(store.Find(1) != nullptr, 2.0 >= GetParam());
  EXPECT_EQ(store.Find(2) != nullptr, 0.5 >= GetParam());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 3.0));

// ---- Knowledge quanta ----

KnowledgeQuantum SampleKq() {
  KnowledgeQuantum kq;
  kq.function.id = 77;
  kq.function.name = "edge-filter";
  kq.function.role = node::FirstLevelRole::kFusion;
  kq.function.cls = node::SecondLevelClass::kFiltering;
  kq.function.program_digest = 0xfeedULL;
  kq.function.fact_keys = {10, 20};
  kq.facts = {{10, 111, 2.0}, {20, 222, 3.5}};
  kq.version = 4;
  return kq;
}

TEST(Knowledge, KqRoundTrip) {
  const auto kq = SampleKq();
  const auto bytes = EncodeKnowledgeQuantum(kq);
  auto decoded = DecodeKnowledgeQuantum(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->function.id, 77u);
  EXPECT_EQ(decoded->function.name, "edge-filter");
  EXPECT_EQ(decoded->function.role, node::FirstLevelRole::kFusion);
  EXPECT_EQ(decoded->function.program_digest, 0xfeedULL);
  EXPECT_EQ(decoded->function.fact_keys, (std::vector<FactKey>{10, 20}));
  ASSERT_EQ(decoded->facts.size(), 2u);
  EXPECT_EQ(decoded->facts[1].value, 222);
  EXPECT_DOUBLE_EQ(decoded->facts[1].weight, 3.5);
  EXPECT_EQ(decoded->version, 4u);
}

TEST(Knowledge, KqRejectsCorruption) {
  auto bytes = EncodeKnowledgeQuantum(SampleKq());
  bytes[6] ^= std::byte{0x80};
  EXPECT_FALSE(DecodeKnowledgeQuantum(bytes).ok());
}

TEST(Knowledge, FunctionAliveTracksFacts) {
  // "The lifetime of a knowledge quantum is defined by the lifetime of its
  // network function", which lives while its facts live.
  FactStore store(TestConfig());
  NetFunction fn = SampleKq().function;
  EXPECT_FALSE(FunctionAlive(fn, store));
  store.Touch(10, 0, 1.0, 0);
  EXPECT_FALSE(FunctionAlive(fn, store));  // needs both facts
  store.Touch(20, 0, 1.0, 0);
  EXPECT_TRUE(FunctionAlive(fn, store));
  store.Erase(10);
  EXPECT_FALSE(FunctionAlive(fn, store));
}

TEST(Knowledge, FactFreeFunctionsAreImmortal) {
  FactStore store(TestConfig());
  NetFunction fn;
  fn.id = 1;
  EXPECT_TRUE(FunctionAlive(fn, store));
}

TEST(Knowledge, FunctionTableInstallReplaceRemove) {
  FunctionTable table;
  NetFunction a;
  a.id = 1;
  a.name = "one";
  table.Install(a);
  NetFunction a2;
  a2.id = 1;
  a2.name = "one-v2";  // "a modification ... determined by a new set of kq"
  table.Install(a2);
  EXPECT_EQ(table.functions().size(), 1u);
  EXPECT_EQ(table.Find(1)->name, "one-v2");
  EXPECT_TRUE(table.Remove(1));
  EXPECT_FALSE(table.Remove(1));
}

TEST(Knowledge, FunctionTableExpiresDeadFunctions) {
  FactStore store(TestConfig());
  store.Touch(5, 0, 1.0, 0);
  FunctionTable table;
  NetFunction alive;
  alive.id = 1;
  alive.fact_keys = {5};
  NetFunction dead;
  dead.id = 2;
  dead.fact_keys = {6};  // never inserted
  NetFunction infra;
  infra.id = 3;  // no facts: immortal
  table.Install(alive);
  table.Install(dead);
  table.Install(infra);
  EXPECT_EQ(table.Expire(store), 1u);
  EXPECT_NE(table.Find(1), nullptr);
  EXPECT_EQ(table.Find(2), nullptr);
  EXPECT_NE(table.Find(3), nullptr);
}

TEST(Knowledge, ForRoleFilters) {
  FunctionTable table;
  NetFunction f1;
  f1.id = 1;
  f1.role = node::FirstLevelRole::kFusion;
  NetFunction f2;
  f2.id = 2;
  f2.role = node::FirstLevelRole::kCaching;
  table.Install(f1);
  table.Install(f2);
  EXPECT_EQ(table.ForRole(node::FirstLevelRole::kFusion).size(), 1u);
  EXPECT_EQ(table.ForRole(node::FirstLevelRole::kFission).size(), 0u);
}

// ---- Genetic transcoding ----

ShipBlueprint SampleBlueprint() {
  ShipBlueprint bp;
  bp.ship_class = node::ShipClass::kAgent;
  bp.role = node::FirstLevelRole::kFission;
  bp.next_step = node::FirstLevelRole::kCaching;
  bp.resident_programs = {0x111, 0x222};
  bp.facts = {{1, 10, 1.5}, {2, 20, 2.5}};
  bp.modules = {{3, node::SecondLevelClass::kBoosting, 8000, 5.0, 0x333}};
  NetFunction fn;
  fn.id = 9;
  fn.name = "fn";
  fn.role = node::FirstLevelRole::kFission;
  bp.functions = {fn};
  bp.genome_version = 2;
  return bp;
}

TEST(GeneticTranscoder, BlueprintRoundTrip) {
  const auto bp = SampleBlueprint();
  const auto genome = EncodeBlueprint(bp);
  auto decoded = DecodeBlueprint(genome);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ship_class, node::ShipClass::kAgent);
  EXPECT_EQ(decoded->role, node::FirstLevelRole::kFission);
  EXPECT_EQ(decoded->next_step, node::FirstLevelRole::kCaching);
  EXPECT_EQ(decoded->resident_programs, bp.resident_programs);
  ASSERT_EQ(decoded->facts.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->facts[1].weight, 2.5);
  ASSERT_EQ(decoded->modules.size(), 1u);
  EXPECT_EQ(decoded->modules[0].gate_count, 8000u);
  EXPECT_DOUBLE_EQ(decoded->modules[0].speedup, 5.0);
  ASSERT_EQ(decoded->functions.size(), 1u);
  EXPECT_EQ(decoded->functions[0].id, 9u);
  EXPECT_EQ(decoded->genome_version, 2u);
}

TEST(GeneticTranscoder, RejectsCorruptGenome) {
  auto genome = EncodeBlueprint(SampleBlueprint());
  genome[4] ^= std::byte{0x40};
  EXPECT_FALSE(DecodeBlueprint(genome).ok());
}

TEST(GeneticTranscoder, RejectsInvalidRole) {
  ShipBlueprint bp = SampleBlueprint();
  bp.role = static_cast<node::FirstLevelRole>(200);
  const auto genome = EncodeBlueprint(bp);
  EXPECT_FALSE(DecodeBlueprint(genome).ok());
}

TEST(GeneticTranscoder, EmptyBlueprintRoundTrips) {
  const auto genome = EncodeBlueprint(ShipBlueprint{});
  auto decoded = DecodeBlueprint(genome);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->facts.empty());
  EXPECT_TRUE(decoded->modules.empty());
  EXPECT_TRUE(decoded->functions.empty());
}

}  // namespace
}  // namespace viator::wli
