// Network Genesis: whole-network snapshot, deterministic restore, delta
// merging, checkpoint-based crash recovery and corruption rejection.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <vector>

#include "core/genetic_transcoder.h"
#include "core/wandering_network.h"
#include "genesis/adapters.h"
#include "genesis/manager.h"
#include "genesis/sections.h"
#include "genesis/snapshot.h"
#include "net/failure.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/latency_plane.h"

namespace viator {
namespace {

constexpr std::uint64_t kSeed = 20260806;

/// One self-contained simulation replica. kPopulated builds the 3x3 grid
/// scenario; kFresh is an empty shell (no topology, no ships) for restores.
struct Replica {
  enum class Mode { kPopulated, kFresh };

  sim::Simulator simulator;
  net::Topology topology;
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> network;

  explicit Replica(Mode mode = Mode::kPopulated, bool tracing = false) {
    if (mode == Mode::kPopulated) topology = net::MakeGrid(3, 3);
    config.telemetry.enable_tracing = tracing;
    network = std::make_unique<wli::WanderingNetwork>(simulator, topology,
                                                      config, kSeed);
    if (mode == Mode::kPopulated) network->PopulateAllNodes();
  }
};

/// Seeded workload driven entirely by the network's own RNG (so a restored
/// network continues the exact same decision sequence): random data
/// shuttles, drained to quiescence, with a metamorphosis pulse every 8th
/// step.
void Drive(Replica& r, int begin, int end) {
  const std::size_t n = r.topology.node_count();
  for (int i = begin; i < end; ++i) {
    const auto src =
        static_cast<net::NodeId>(r.network->rng().UniformInt(0, n - 1));
    auto dst =
        static_cast<net::NodeId>(r.network->rng().UniformInt(0, n - 1));
    if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % n);
    (void)r.network->Inject(
        wli::Shuttle::Data(src, dst, {i, 3, 5}, static_cast<std::uint64_t>(i) + 1));
    r.simulator.RunAll();
    if (i % 8 == 7) {
      r.network->Pulse();
      r.simulator.RunAll();
    }
  }
}

std::string TraceJsonl(const Replica& r) {
  std::ostringstream out;
  r.network->trace().WriteJsonl(out);
  return out.str();
}

// ---- The headline property: deterministic resume ---------------------------

TEST(GenesisResume, SnapshotRestoreContinuesBitIdentically) {
  // Uninterrupted reference: 2N steps in one life.
  Replica ref;
  Drive(ref, 0, 64);
  Drive(ref, 64, 128);

  // Interrupted twin: N steps, snapshot, restore into a fresh replica,
  // continue to 2N.
  Replica first;
  Drive(first, 0, 64);
  genesis::GenesisManager source(*first.network);
  auto snapshot = source.CaptureFull();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  Replica resumed = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*resumed.network);
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());
  Drive(resumed, 64, 128);

  // The trace log and the serialized stats of the resumed run must be
  // byte-identical to the uninterrupted run.
  EXPECT_EQ(TraceJsonl(resumed), TraceJsonl(ref));
  EXPECT_EQ(genesis::SaveStats(resumed.network->stats()),
            genesis::SaveStats(ref.network->stats()));
  EXPECT_EQ(resumed.simulator.now(), ref.simulator.now());
  EXPECT_EQ(resumed.simulator.dispatched(), ref.simulator.dispatched());
  EXPECT_EQ(resumed.network->pulses(), ref.network->pulses());

  // Strongest form: a full snapshot of each end state is byte-identical
  // (both managers are at the same sequence number by construction).
  genesis::GenesisManager ref_manager(*ref.network);
  auto ref_end = ref_manager.CaptureFull();
  auto resumed_end = target.CaptureFull();
  ASSERT_TRUE(ref_end.ok());
  ASSERT_TRUE(resumed_end.ok());
  auto ref_parsed = genesis::ParseSnapshot(*ref_end);
  auto res_parsed = genesis::ParseSnapshot(*resumed_end);
  ASSERT_TRUE(ref_parsed.ok());
  ASSERT_TRUE(res_parsed.ok());
  ASSERT_EQ(ref_parsed->sections.size(), res_parsed->sections.size());
  for (std::size_t i = 0; i < ref_parsed->sections.size(); ++i) {
    // Every decision-state section must match bit for bit. mem-peaks is the
    // one advisory section: shuttle pools restore empty by design (shells
    // are recycled capacity, not state), so the resumed run's retained-byte
    // watermark lawfully trails the uninterrupted run's.
    if (ref_parsed->sections[i].id == genesis::kSectionMemPeaks) continue;
    EXPECT_EQ(ref_parsed->sections[i].digest, res_parsed->sections[i].digest)
        << "section " << genesis::SectionName(ref_parsed->sections[i].id)
        << " diverged after resume";
  }
}

TEST(GenesisResume, TracedRunRestoresBitIdentically) {
  // Same deterministic-resume property, with capsule tracing live: the span
  // collector (id RNG, counters, every retained span) rides in the extras
  // region via TelemetryAdapter, and a restored run keeps issuing the exact
  // trace ids the uninterrupted run would have issued.
  Replica ref(Replica::Mode::kPopulated, /*tracing=*/true);
  Drive(ref, 0, 48);
  Drive(ref, 48, 96);

  Replica first(Replica::Mode::kPopulated, /*tracing=*/true);
  Drive(first, 0, 48);
  genesis::TelemetryAdapter source_adapter(first.network->telemetry());
  genesis::GenesisManager source(*first.network);
  ASSERT_TRUE(source.RegisterExtra(source_adapter).ok());
  auto snapshot = source.CaptureFull();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // Fresh replica with tracing enabled but a *different* effective id seed
  // history (nothing recorded yet): the restore must overwrite all of it.
  Replica resumed(Replica::Mode::kFresh, /*tracing=*/true);
  genesis::TelemetryAdapter resumed_adapter(resumed.network->telemetry());
  genesis::GenesisManager target(*resumed.network);
  ASSERT_TRUE(target.RegisterExtra(resumed_adapter).ok());
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());
  Drive(resumed, 48, 96);

  // Span-for-span identical telemetry, including ids drawn after the resume.
  const auto& ref_spans = ref.network->telemetry().spans();
  const auto& res_spans = resumed.network->telemetry().spans();
  EXPECT_EQ(res_spans.traces_started(), ref_spans.traces_started());
  EXPECT_EQ(res_spans.spans_recorded(), ref_spans.spans_recorded());
  ASSERT_EQ(res_spans.spans().size(), ref_spans.spans().size());
  for (std::size_t i = 0; i < ref_spans.spans().size(); ++i) {
    const auto& a = ref_spans.spans()[i];
    const auto& b = res_spans.spans()[i];
    EXPECT_EQ(b.trace_id, a.trace_id) << "span " << i;
    EXPECT_EQ(b.span_id, a.span_id);
    EXPECT_EQ(b.parent_span_id, a.parent_span_id);
    EXPECT_EQ(b.ship, a.ship);
    EXPECT_EQ(b.component, a.component);
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.start, a.start);
    EXPECT_EQ(b.end, a.end);
  }

  // The telemetry sections of both end states serialize byte-identically.
  genesis::TelemetryAdapter ref_adapter(ref.network->telemetry());
  EXPECT_EQ(resumed_adapter.Save(), ref_adapter.Save());
  EXPECT_EQ(TraceJsonl(resumed), TraceJsonl(ref));
  EXPECT_EQ(resumed.simulator.now(), ref.simulator.now());
}

TEST(GenesisResume, RestoredCountersAndStateMatchSource) {
  Replica source;
  Drive(source, 0, 40);
  genesis::GenesisManager manager(*source.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok());

  Replica restored = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*restored.network);
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());

  EXPECT_EQ(restored.topology.node_count(), source.topology.node_count());
  EXPECT_EQ(restored.topology.link_count(), source.topology.link_count());
  EXPECT_EQ(restored.network->ship_count(), source.network->ship_count());
  EXPECT_EQ(restored.simulator.now(), source.simulator.now());
  EXPECT_EQ(restored.simulator.dispatched(), source.simulator.dispatched());
  EXPECT_EQ(restored.network->fabric().frames_delivered(),
            source.network->fabric().frames_delivered());
  EXPECT_EQ(restored.network->fabric().next_frame_id(),
            source.network->fabric().next_frame_id());
  for (net::NodeId node = 0; node < restored.topology.node_count(); ++node) {
    const wli::Ship* a = source.network->ship(node);
    const wli::Ship* b = restored.network->ship(node);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->shuttles_consumed(), a->shuttles_consumed());
    EXPECT_EQ(b->shuttles_forwarded(), a->shuttles_forwarded());
    EXPECT_EQ(b->os().current_role(), a->os().current_role());
    EXPECT_EQ(b->facts().AllFacts().size(), a->facts().AllFacts().size());
  }
}

TEST(GenesisResume, MemoryPeaksSurviveSnapshotRestore) {
  // The Memory Observatory's deterministic high-water marks — calendar-queue
  // heap peak and shuttle-pool retained peak — ride the clock and
  // network-counter sections as optional tags, so a restored world reports
  // the same peaks the interrupted one reached (old snapshots without the
  // tags keep the fresh world's own peaks).
  Replica source;
  Drive(source, 0, 40);
  const std::size_t pool_peak =
      source.network->shuttle_pool().peak_retained_bytes();
  const std::size_t queue_peak = source.simulator.queue_peak_heap_bytes();
  EXPECT_GT(queue_peak, 0u);
  EXPECT_GT(pool_peak, 0u);
  genesis::GenesisManager manager(*source.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok());

  Replica restored = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*restored.network);
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());
  EXPECT_EQ(restored.network->shuttle_pool().peak_retained_bytes(), pool_peak);
  EXPECT_EQ(restored.simulator.queue_peak_heap_bytes(), queue_peak);
}

TEST(GenesisResume, LatencySketchesSurviveSnapshotRestore) {
  // The Latency Observatory section is advisory but integer-exact: every
  // per-(stage, class) sketch and the window delivery sketch round-trip
  // bit-identically (open flights are deliberately not captured — a
  // quiescent boundary has none worth keeping).
  telemetry::lat::SetEnabled(true);
  Replica source;
  Drive(source, 0, 40);
  telemetry::lat::SetEnabled(false);
  const telemetry::lat::Lane& lane = source.network->lat_lane();
  EXPECT_GT(lane.DeliveredCount(), 0u);

  genesis::GenesisManager manager(*source.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  Replica restored = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*restored.network);
  ASSERT_TRUE(target.RestoreFull(*snapshot).ok());
  const telemetry::lat::Lane& twin = restored.network->lat_lane();
  for (std::size_t s = 0; s < telemetry::lat::kStageCount; ++s) {
    const auto stage = static_cast<telemetry::lat::Stage>(s);
    for (std::size_t c = 0; c < telemetry::lat::StageClassCount(stage); ++c) {
      EXPECT_EQ(twin.Sketch(stage, c), lane.Sketch(stage, c))
          << telemetry::lat::StageName(stage) << "[" << c << "]";
    }
  }
  EXPECT_EQ(twin.window_sketch(), lane.window_sketch());

  // Capture → restore → capture: the latency payload is byte-stable.
  auto recapture = target.CaptureFull();
  ASSERT_TRUE(recapture.ok());
  auto first = genesis::ParseSnapshot(*snapshot);
  auto second = genesis::ParseSnapshot(*recapture);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const genesis::SectionRecord* a =
      first->Find(genesis::kSectionLatency);
  const genesis::SectionRecord* b =
      second->Find(genesis::kSectionLatency);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->digest, b->digest);
  EXPECT_EQ(a->payload, b->payload);
}

// ---- Delta snapshots --------------------------------------------------------

TEST(GenesisDelta, DeltaMergeEqualsDirectFullCapture) {
  Replica replica;
  Drive(replica, 0, 32);
  genesis::GenesisManager manager(*replica.network);
  auto full = manager.CaptureFull();
  ASSERT_TRUE(full.ok());

  Drive(replica, 32, 48);
  auto delta = manager.CaptureDelta();
  ASSERT_TRUE(delta.ok());
  auto delta_parsed = genesis::ParseSnapshot(*delta);
  ASSERT_TRUE(delta_parsed.ok());
  EXPECT_EQ(delta_parsed->header.kind, genesis::SnapshotKind::kDelta);

  // The delta must skip sections that cannot have changed (topology,
  // repository) and therefore be smaller than a full capture would be.
  auto full_now = genesis::ParseSnapshot(*full);
  ASSERT_TRUE(full_now.ok());
  EXPECT_LT(delta_parsed->sections.size(), full_now->sections.size());
  EXPECT_EQ(delta_parsed->Find(genesis::kSectionTopology), nullptr);
  EXPECT_NE(delta_parsed->Find(genesis::kSectionClock), nullptr);

  auto merged = genesis::MergeDelta(*full, *delta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  Replica restored = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*restored.network);
  ASSERT_TRUE(target.RestoreFull(*merged).ok());
  EXPECT_EQ(genesis::SaveStats(restored.network->stats()),
            genesis::SaveStats(replica.network->stats()));
  EXPECT_EQ(restored.simulator.now(), replica.simulator.now());

  // The merged state resumes identically to the source.
  Drive(replica, 48, 64);
  Drive(restored, 48, 64);
  EXPECT_EQ(TraceJsonl(restored), TraceJsonl(replica));
}

TEST(GenesisDelta, DeltaRequiresPriorFullAndMatchingBase) {
  Replica replica;
  genesis::GenesisManager manager(*replica.network);
  EXPECT_FALSE(manager.CaptureDelta().ok());

  Drive(replica, 0, 8);
  auto full1 = manager.CaptureFull();
  ASSERT_TRUE(full1.ok());
  Drive(replica, 8, 16);
  auto full2 = manager.CaptureFull();
  ASSERT_TRUE(full2.ok());
  Drive(replica, 16, 24);
  auto delta = manager.CaptureDelta();
  ASSERT_TRUE(delta.ok());

  // The delta bases on full2; merging onto full1 must be refused.
  EXPECT_FALSE(genesis::MergeDelta(*full1, *delta).ok());
  EXPECT_TRUE(genesis::MergeDelta(*full2, *delta).ok());
  // A delta is not restorable directly.
  Replica fresh = Replica(Replica::Mode::kFresh);
  genesis::GenesisManager target(*fresh.network);
  EXPECT_FALSE(target.RestoreFull(*delta).ok());
}

// ---- Checkpointing + crash recovery ----------------------------------------

TEST(GenesisCheckpoint, CrashRecoveryFromNewestCheckpoint) {
  Replica replica;
  net::FailureInjector injector(replica.simulator, replica.topology,
                                Rng(kSeed ^ 0xfa11));
  genesis::FailureInjectorAdapter adapter(injector);
  genesis::GenesisConfig gconfig;
  gconfig.checkpoint_cadence = 20 * sim::kMillisecond;
  gconfig.keep_checkpoints = 3;
  genesis::GenesisManager manager(*replica.network, gconfig);
  ASSERT_TRUE(manager.RegisterExtra(adapter).ok());

  // A transient link failure that fully plays out before the first
  // checkpoint fires (no pending repair closures at capture time).
  injector.FailLink(0, 2 * sim::kMillisecond, 5 * sim::kMillisecond);
  manager.StartCheckpointing(100 * sim::kMillisecond);
  replica.simulator.RunUntil(100 * sim::kMillisecond);
  ASSERT_GT(manager.checkpoints_taken(), 0u);
  ASSERT_LE(manager.checkpoints().size(), 3u);
  const std::vector<std::byte> newest = manager.checkpoints().back();

  // "Crash": throw the replica away, restore the newest checkpoint into a
  // fresh one, failure process included.
  Replica recovered = Replica(Replica::Mode::kFresh);
  net::FailureInjector recovered_injector(recovered.simulator,
                                          recovered.topology, Rng(1));
  genesis::FailureInjectorAdapter recovered_adapter(recovered_injector);
  genesis::GenesisManager target(*recovered.network);
  ASSERT_TRUE(target.RegisterExtra(recovered_adapter).ok());
  ASSERT_TRUE(target.RestoreFull(newest).ok());

  EXPECT_EQ(recovered_injector.failures_injected(),
            injector.failures_injected());
  EXPECT_EQ(recovered.topology.link_count(), replica.topology.link_count());
  for (net::LinkId id = 0; id < recovered.topology.link_count(); ++id) {
    EXPECT_EQ(recovered.topology.link(id).up, true);
  }

  // The recovered replica serializes back to the checkpoint bit for bit.
  auto recaptured = target.CaptureFull();
  ASSERT_TRUE(recaptured.ok());
  auto a = genesis::ParseSnapshot(newest);
  auto b = genesis::ParseSnapshot(*recaptured);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->sections.size(), b->sections.size());
  for (std::size_t i = 0; i < a->sections.size(); ++i) {
    EXPECT_EQ(a->sections[i].digest, b->sections[i].digest)
        << "section " << genesis::SectionName(a->sections[i].id);
  }
}

TEST(GenesisCheckpoint, NonQuiescentCapturesAreSkipped) {
  Replica replica;
  genesis::GenesisManager manager(*replica.network);
  // A far-future event makes the network non-quiescent.
  auto handle = replica.simulator.ScheduleAt(sim::kSecond, [] {});
  EXPECT_FALSE(manager.CaptureFull().ok());
  handle.Cancel();
  EXPECT_TRUE(manager.CaptureFull().ok());
}

// ---- Strict validation ------------------------------------------------------

TEST(GenesisValidation, EverySampledBitFlipIsRejected) {
  Replica replica;
  Drive(replica, 0, 16);
  genesis::GenesisManager manager(*replica.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok());

  std::vector<std::byte> bytes = *snapshot;
  const std::size_t total_bits = bytes.size() * 8;
  std::size_t flips = 0;
  for (std::size_t bit = 0; bit < total_bits; bit += 1009) {
    std::vector<std::byte> corrupt = bytes;
    corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_FALSE(genesis::VerifySnapshot(corrupt).ok())
        << "bit " << bit << " flip was not detected";
    Replica fresh = Replica(Replica::Mode::kFresh);
    genesis::GenesisManager target(*fresh.network);
    EXPECT_FALSE(target.RestoreFull(corrupt).ok());
    EXPECT_EQ(fresh.network->ship_count(), 0u)
        << "corrupt restore touched network state";
    ++flips;
  }
  EXPECT_GT(flips, 50u);
}

TEST(GenesisValidation, TruncationsAreRejected) {
  Replica replica;
  Drive(replica, 0, 16);
  genesis::GenesisManager manager(*replica.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok());

  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          snapshot->size() / 2, snapshot->size() - 1}) {
    std::vector<std::byte> truncated(snapshot->begin(),
                                     snapshot->begin() + len);
    EXPECT_FALSE(genesis::VerifySnapshot(truncated).ok())
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST(GenesisValidation, FormatVersionMismatchIsRejected) {
  genesis::SnapshotHeader header;
  header.format_version = 99;
  genesis::SnapshotBuilder builder(header);
  builder.AddSection(genesis::kSectionClock, {});
  const std::vector<std::byte> bytes = builder.Finish();
  Status status = genesis::VerifySnapshot(bytes);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(GenesisValidation, RestoreRequiresFreshNetwork) {
  Replica replica;
  Drive(replica, 0, 8);
  genesis::GenesisManager manager(*replica.network);
  auto snapshot = manager.CaptureFull();
  ASSERT_TRUE(snapshot.ok());

  // Restoring on top of the (populated) source network must be refused.
  Status status = manager.RestoreFull(*snapshot);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(GenesisValidation, ExtraRegistrationIsValidated) {
  Replica replica;
  net::FailureInjector injector(replica.simulator, replica.topology, Rng(1));
  genesis::GenesisManager manager(*replica.network);
  genesis::FailureInjectorAdapter bad(injector, /*id=*/7);  // built-in range
  EXPECT_FALSE(manager.RegisterExtra(bad).ok());
  genesis::FailureInjectorAdapter good(injector);
  EXPECT_TRUE(manager.RegisterExtra(good).ok());
  genesis::FailureInjectorAdapter dup(injector);
  EXPECT_FALSE(manager.RegisterExtra(dup).ok());
}

// ---- Genome fuzzing (satellite: DecodeBlueprint never crashes) --------------

TEST(GenomeFuzz, BlueprintBitFlipsAlwaysReturnStatusErrors) {
  wli::ShipBlueprint blueprint;
  blueprint.ship_class = node::ShipClass::kAgent;
  blueprint.role = node::FirstLevelRole::kDelegation;
  blueprint.resident_programs = {0x1234, 0x5678};
  blueprint.facts.push_back({42, 7, 1.5});
  blueprint.modules.push_back(
      {3, node::SecondLevelClass::kSupplementary, 128, 2.0, 0x9abc});
  wli::NetFunction fn;
  fn.id = 11;
  fn.name = "fuzzed";
  fn.fact_keys = {42};
  blueprint.functions.push_back(fn);

  const std::vector<std::byte> genome = wli::EncodeBlueprint(blueprint);
  ASSERT_TRUE(wli::DecodeBlueprint(genome).ok());

  // Every single-bit corruption must be caught by the checksum trailer.
  for (std::size_t bit = 0; bit < genome.size() * 8; ++bit) {
    std::vector<std::byte> corrupt = genome;
    corrupt[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    auto decoded = wli::DecodeBlueprint(corrupt);
    EXPECT_FALSE(decoded.ok()) << "bit " << bit << " flip decoded fine";
  }
  // Every truncation must fail cleanly too.
  for (std::size_t len = 0; len < genome.size(); ++len) {
    std::vector<std::byte> truncated(genome.begin(), genome.begin() + len);
    EXPECT_FALSE(wli::DecodeBlueprint(truncated).ok())
        << "truncation to " << len << " bytes decoded fine";
  }
}

TEST(GenomeFuzz, MultiByteCorruptionNeverCrashesDecode) {
  wli::ShipBlueprint blueprint;
  blueprint.resident_programs = {1, 2, 3};
  const std::vector<std::byte> genome = wli::EncodeBlueprint(blueprint);

  // Deterministic pseudo-random multi-byte corruption: whatever happens,
  // DecodeBlueprint must return (ok or error), never crash or hang.
  Rng rng(777);
  for (int round = 0; round < 500; ++round) {
    std::vector<std::byte> corrupt = genome;
    const int edits = static_cast<int>(rng.UniformInt(1, 8));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.UniformInt(0, corrupt.size() - 1));
      corrupt[pos] = static_cast<std::byte>(rng.UniformInt(0, 255));
    }
    auto decoded = wli::DecodeBlueprint(corrupt);  // must not crash
    (void)decoded;
  }
  SUCCEED();
}

}  // namespace
}  // namespace viator
