// Tests for the functional-class services: fusion, fission, caching,
// delegation, transcoding, boosters, supplementary buffering and the
// security/management suite.
#include <gtest/gtest.h>

#include "baselines/passive.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/boosting.h"
#include "services/caching.h"
#include "services/combining.h"
#include "services/delegation.h"
#include "services/fission.h"
#include "services/fusion.h"
#include "services/security_mgmt.h"
#include "services/supplementary.h"
#include "services/transcoding.h"
#include "sim/simulator.h"

namespace viator::services {
namespace {

struct ServiceFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology = net::MakeLine(5);
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> wn;

  void Build() {
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 77);
    wn->PopulateAllNodes();
  }
};

// ---- Fusion ----

TEST_F(ServiceFixture, FusionReducesBytes) {
  Build();
  FusionService::Config cfg;
  cfg.sink = 4;
  cfg.window = 4;
  FusionService fusion(*wn, 2, cfg);
  std::vector<std::int64_t> sink_payload;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    sink_payload = s.payload;
  });
  // 8 readings of 16 words each -> 2 aggregates of 4 words.
  for (int i = 1; i <= 8; ++i) {
    std::vector<std::int64_t> reading(16, i);
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, reading, 1)).ok());
  }
  simulator.RunAll();
  EXPECT_EQ(fusion.shuttles_in(), 8u);
  EXPECT_EQ(fusion.shuttles_out(), 2u);
  EXPECT_GT(fusion.ReductionFactor(), 2.0);
  // Last aggregate covers readings 5..8: count=64, sum=16*(5+6+7+8)=416.
  ASSERT_EQ(sink_payload.size(), 4u);
  EXPECT_EQ(sink_payload[0], 64);   // count
  EXPECT_EQ(sink_payload[1], 416);  // sum
  EXPECT_EQ(sink_payload[2], 5);    // min
  EXPECT_EQ(sink_payload[3], 8);    // max
}

TEST_F(ServiceFixture, FusionTracksFlowsIndependently) {
  Build();
  FusionService::Config cfg;
  cfg.sink = 4;
  cfg.window = 2;
  FusionService fusion(*wn, 2, cfg);
  int aggregates = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++aggregates; });
  // One shuttle in each of two flows: neither window filled.
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {1}, /*flow=*/10)).ok());
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {2}, /*flow=*/20)).ok());
  simulator.RunAll();
  EXPECT_EQ(aggregates, 0);
  // Second shuttle of flow 10 completes that window only.
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {3}, 10)).ok());
  simulator.RunAll();
  EXPECT_EQ(aggregates, 1);
}

// ---- Fission vs passive unicast ----

TEST_F(ServiceFixture, FissionSavesUpstreamBandwidth) {
  Build();
  FissionService fission(*wn, 2);
  const std::uint64_t group = 9;
  for (net::NodeId sub : {3u, 4u}) fission.Subscribe(group, sub);
  int deliveries = 0;
  for (net::NodeId sub : {3u, 4u}) {
    wn->ship(sub)->SetDeliverySink(
        [&](wli::Ship&, const wli::Shuttle&) { ++deliveries; });
  }
  std::vector<std::int64_t> content(64, 1);
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, content, group)).ok());
  simulator.RunAll();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(fission.duplicated(), 2u);
  // Upstream links (0-1, 1-2) carried the content once.
  const auto& link_bytes = wn->fabric().link_bytes();
  EXPECT_EQ(link_bytes[0], link_bytes[1]);
  const auto multicast_upstream = link_bytes[0];

  // Passive comparison: unicast to both receivers doubles upstream load.
  sim::Simulator sim2;
  net::Topology topo2 = net::MakeLine(5);
  wli::WanderingNetwork wn2(sim2, topo2, config, 77);
  wn2.PopulateAllNodes();
  baselines::PassiveEndpoints passive(wn2);
  passive.UnicastToAll(0, {3, 4}, content, group);
  sim2.RunAll();
  EXPECT_GE(wn2.fabric().link_bytes()[0], 2 * multicast_upstream - 64);
}

TEST_F(ServiceFixture, FissionUnsubscribeStopsCopies) {
  Build();
  FissionService fission(*wn, 2);
  fission.Subscribe(1, 3);
  fission.Subscribe(1, 4);
  fission.Unsubscribe(1, 3);
  EXPECT_EQ(fission.SubscriberCount(1), 1u);
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {5}, 1)).ok());
  simulator.RunAll();
  EXPECT_EQ(fission.duplicated(), 1u);
}

// ---- Caching ----

TEST_F(ServiceFixture, CacheMissThenHit) {
  Build();
  ContentOrigin origin(*wn, 4);
  CachingService cache(*wn, 2, 4, /*capacity=*/8);
  std::vector<sim::TimePoint> reply_times;
  wn->ship(0)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (!s.payload.empty() && s.payload[0] == kCacheOpData) {
      reply_times.push_back(simulator.now());
    }
  });
  auto get = [&](std::uint64_t content) {
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(
                                0, 2,
                                {kCacheOpGet,
                                 static_cast<std::int64_t>(content)},
                                content))
                    .ok());
    simulator.RunAll();
  };
  const sim::TimePoint t0 = simulator.now();
  get(42);
  const sim::TimePoint cold = reply_times.at(0) - t0;
  const sim::TimePoint t1 = simulator.now();
  get(42);
  const sim::TimePoint warm = reply_times.at(1) - t1;
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(origin.requests_served(), 1u);
  // Warm path avoids the cache->origin->cache leg entirely.
  EXPECT_LT(warm, cold / 2);
}

TEST_F(ServiceFixture, CacheEvictsLruUnderCapacity) {
  Build();
  ContentOrigin origin(*wn, 4);
  CachingService cache(*wn, 2, 4, /*capacity=*/2);
  auto get = [&](std::uint64_t content) {
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(
                                0, 2,
                                {kCacheOpGet,
                                 static_cast<std::int64_t>(content)},
                                content))
                    .ok());
    simulator.RunAll();
  };
  get(1);
  get(2);
  get(3);  // evicts 1
  get(1);  // miss again
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
  get(1);  // now hit
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(ServiceFixture, CacheServesCorrectBody) {
  Build();
  ContentOrigin origin(*wn, 4, /*object_words=*/16);
  CachingService cache(*wn, 2, 4);
  std::vector<std::int64_t> body;
  wn->ship(0)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (!s.payload.empty() && s.payload[0] == kCacheOpData) {
      body.assign(s.payload.begin() + 2, s.payload.end());
    }
  });
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {kCacheOpGet, 7}, 7)).ok());
  simulator.RunAll();
  EXPECT_EQ(body, ContentOrigin::ObjectBody(7, 16));
}

// ---- Delegation ----

TEST_F(ServiceFixture, NomadicServiceFollowsUser) {
  Build();
  NomadicDelegation::Config cfg;
  cfg.max_distance_hops = 1;
  NomadicDelegation nomadic(*wn, /*initial_host=*/0, cfg);
  EXPECT_EQ(nomadic.host(), 0u);
  nomadic.UserMovedTo(1);  // distance 1: stays
  simulator.RunAll();
  EXPECT_EQ(nomadic.host(), 0u);
  nomadic.UserMovedTo(4);  // distance 4: migrates
  simulator.RunAll();
  EXPECT_EQ(nomadic.host(), 4u);
  EXPECT_EQ(nomadic.migrations(), 1u);
}

TEST_F(ServiceFixture, NomadicMigrationShortensRtt) {
  Build();
  NomadicDelegation::Config cfg;
  cfg.max_distance_hops = 0;  // always colocate
  NomadicDelegation nomadic(*wn, 0, cfg);
  sim::TimePoint reply_at = 0;
  sim::TimePoint sent_at = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (!s.payload.empty() && s.payload[0] == kDelegationReply) {
      reply_at = simulator.now();
    }
  });
  // Far request (host at 0, user at 4).
  sent_at = simulator.now();
  ASSERT_TRUE(nomadic.SendRequest(4, 1).ok());
  simulator.RunAll();
  const auto far_rtt = reply_at - sent_at;
  // Move the user (and the service); RTT collapses.
  nomadic.UserMovedTo(4);
  simulator.RunAll();
  ASSERT_EQ(nomadic.host(), 4u);
  sent_at = simulator.now();
  ASSERT_TRUE(nomadic.SendRequest(4, 2).ok());
  simulator.RunAll();
  const auto near_rtt = reply_at - sent_at;
  EXPECT_LT(near_rtt, far_rtt / 2);
  EXPECT_EQ(nomadic.requests_answered(), 2u);
}

// ---- Transcoding ----

TEST_F(ServiceFixture, TranscoderDegradesUnderCongestion) {
  // Fast ingress, slow egress: backlog builds at the transcoder node.
  net::LinkConfig fast;
  net::LinkConfig slow;
  slow.bandwidth_bps = 64 * 1024;  // 8 KiB/s
  topology = net::Topology();
  topology.AddNodes(5);
  topology.AddLink(0, 1, fast);
  topology.AddLink(1, 2, fast);
  topology.AddLink(2, 3, slow);
  topology.AddLink(3, 4, slow);
  Build();
  TranscodingService::Config cfg;
  cfg.sink = 4;
  cfg.congestion_backlog_bytes = 2048;
  TranscodingService transcoder(*wn, 2, cfg);
  EXPECT_DOUBLE_EQ(transcoder.quality(), 1.0);
  for (int i = 0; i < 60; ++i) {
    std::vector<std::int64_t> media(64, i);
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, media, 5)).ok());
  }
  simulator.RunAll();
  EXPECT_GT(transcoder.congestion_events(), 0u);
  EXPECT_LT(transcoder.media_out_words(), transcoder.media_in_words());
}

TEST_F(ServiceFixture, TranscoderKeepsQualityWhenIdle) {
  Build();  // default fast links: no backlog
  TranscodingService::Config cfg;
  cfg.sink = 4;
  TranscodingService transcoder(*wn, 2, cfg);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        wn->Inject(wli::Shuttle::Data(0, 2, {1, 2, 3, 4}, 5)).ok());
    simulator.RunAll();
  }
  EXPECT_EQ(transcoder.congestion_events(), 0u);
  EXPECT_DOUBLE_EQ(transcoder.quality(), 1.0);
  EXPECT_EQ(transcoder.media_out_words(), transcoder.media_in_words());
}

// ---- FEC booster ----

TEST_F(ServiceFixture, FecRecoversSingleLossPerBlock) {
  // The booster brackets one lossy link (1-2); everything else is clean.
  net::LinkConfig clean;
  net::LinkConfig lossy;
  lossy.loss_probability = 0.12;
  topology = net::Topology();
  topology.AddNodes(5);
  topology.AddLink(0, 1, clean);
  topology.AddLink(1, 2, lossy);
  topology.AddLink(2, 3, clean);
  topology.AddLink(3, 4, clean);
  Build();
  FecBooster::Config cfg;
  cfg.ingress = 0;
  cfg.egress = 3;
  cfg.final_destination = 4;
  cfg.block_size = 4;
  FecBooster booster(*wn, cfg);
  int delivered = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle& s) {
        if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
      });
  const int blocks = 50;
  for (int i = 0; i < blocks * 4; ++i) {
    ASSERT_TRUE(booster.SendData(1, i).ok());
  }
  simulator.RunAll();
  EXPECT_GT(booster.recovered(), 0u);
  EXPECT_EQ(booster.parity_sent(), static_cast<std::uint64_t>(blocks));
  // Raw delivery over the 12%-lossy link would be ~88%; single-parity FEC
  // recovers most single-loss blocks, pushing delivery above 93%.
  EXPECT_GT(delivered, static_cast<int>(blocks * 4 * 0.93));
}

TEST_F(ServiceFixture, FecNoLossMeansNoRecoveries) {
  Build();
  FecBooster::Config cfg;
  cfg.ingress = 0;
  cfg.egress = 3;
  cfg.final_destination = 4;
  FecBooster booster(*wn, cfg);
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(booster.SendData(1, i).ok());
  simulator.RunAll();
  EXPECT_EQ(booster.recovered(), 0u);
  EXPECT_EQ(booster.forwarded(), 16u);
}

// ---- Compression booster ----

TEST_F(ServiceFixture, CompressionShrinksSegmentBytes) {
  Build();
  CompressionBooster::Config cfg;
  cfg.ingress = 0;
  cfg.egress = 3;
  cfg.final_destination = 4;
  cfg.ratio = 0.25;
  CompressionBooster booster(*wn, cfg);
  std::size_t delivered_words = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    delivered_words = s.payload.size();
  });
  std::vector<std::int64_t> payload(100, 7);
  ASSERT_TRUE(booster.SendData(1, payload).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered_words, 100u);         // re-expanded at egress
  EXPECT_EQ(booster.bytes_saved(), 600u);   // 75 words * 8 bytes
}

// ---- Combining (cross-flow multiplexing) ----

TEST_F(ServiceFixture, CombinerMuxesAndDemuxes) {
  Build();
  CombiningService::Config cfg;
  cfg.sink = 4;
  cfg.batch_size = 4;
  CombiningService combiner(*wn, 2, cfg);
  std::map<std::uint64_t, std::vector<std::int64_t>> restored;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData && !s.payload.empty() &&
        s.payload[0] != kMuxMarker) {
      restored[s.header.flow_id] = s.payload;
    }
  });
  // Four small shuttles from four different flows.
  for (std::uint64_t flow = 1; flow <= 4; ++flow) {
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(
                                0, 2, {static_cast<std::int64_t>(flow * 10)},
                                flow))
                    .ok());
  }
  simulator.RunAll();
  EXPECT_EQ(combiner.shuttles_in(), 4u);
  EXPECT_EQ(combiner.carriers_out(), 1u);
  EXPECT_EQ(combiner.demuxed(), 4u);
  ASSERT_EQ(restored.size(), 4u);
  for (std::uint64_t flow = 1; flow <= 4; ++flow) {
    EXPECT_EQ(restored[flow],
              (std::vector<std::int64_t>{static_cast<std::int64_t>(flow * 10)}));
  }
}

TEST_F(ServiceFixture, CombinerSavesHeaderBytes) {
  Build();
  CombiningService::Config cfg;
  cfg.sink = 4;
  cfg.batch_size = 8;
  CombiningService combiner(*wn, 2, cfg);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {i}, i + 1)).ok());
  }
  simulator.RunAll();
  // 8 shuttles of 1 word: 8x40 B in; one carrier with 2+8x3 words out.
  EXPECT_GT(combiner.BytesSaved(), 0);
  EXPECT_EQ(combiner.carriers_out(), 1u);
}

TEST_F(ServiceFixture, CombinerWindowTimeoutFlushesPartialBatch) {
  Build();
  CombiningService::Config cfg;
  cfg.sink = 4;
  cfg.batch_size = 100;  // never reached by count
  cfg.window = 50 * sim::kMillisecond;
  CombiningService combiner(*wn, 2, cfg);
  int restored = 0;
  wn->ship(4)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind == wli::ShuttleKind::kData && !s.payload.empty() &&
        s.payload[0] != kMuxMarker) {
      ++restored;
    }
  });
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {7}, 1)).ok());
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {8}, 2)).ok());
  simulator.RunUntil(sim::kSecond);
  EXPECT_EQ(combiner.carriers_out(), 1u);
  EXPECT_EQ(restored, 2);
}

TEST_F(ServiceFixture, DemuxerIgnoresMalformedCarriers) {
  Build();
  CombiningService::Config cfg;
  cfg.sink = 4;
  CombiningService combiner(*wn, 2, cfg);
  // A carrier claiming more entries than it holds: demux must stop cleanly.
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(
                              0, 4, {kMuxMarker, 5, /*flow*/ 1, /*len*/ 99},
                              kMuxMarker))
                  .ok());
  simulator.RunAll();
  EXPECT_EQ(combiner.demuxed(), 0u);
}

// ---- Supplementary: content buffer ----

TEST_F(ServiceFixture, ContentBufferBatchesMatching) {
  Build();
  ContentBuffer::Config cfg;
  cfg.sink = 4;
  cfg.match_tag = 55;
  cfg.batch_size = 3;
  cfg.timeout = 10 * sim::kSecond;  // long: batches close by count
  ContentBuffer buffer(*wn, 2, cfg);
  int delivered = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++delivered; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {55, i}, 1)).ok());
  }
  simulator.RunAll();
  EXPECT_EQ(buffer.batches_released(), 1u);
  EXPECT_EQ(delivered, 3);
}

TEST_F(ServiceFixture, ContentBufferTimeoutReleases) {
  Build();
  ContentBuffer::Config cfg;
  cfg.sink = 4;
  cfg.match_tag = 55;
  cfg.batch_size = 100;  // never reached
  cfg.timeout = 50 * sim::kMillisecond;
  ContentBuffer buffer(*wn, 2, cfg);
  int delivered = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++delivered; });
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {55, 1}, 1)).ok());
  simulator.RunUntil(sim::kSecond);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(buffer.batches_released(), 1u);
}

TEST_F(ServiceFixture, ContentBufferPassesNonMatching) {
  Build();
  ContentBuffer::Config cfg;
  cfg.sink = 4;
  cfg.match_tag = 55;
  ContentBuffer buffer(*wn, 2, cfg);
  int delivered = 0;
  wn->ship(4)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++delivered; });
  ASSERT_TRUE(wn->Inject(wli::Shuttle::Data(0, 2, {99, 1}, 1)).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(buffer.passed_through(), 1u);
  EXPECT_EQ(buffer.buffered_total(), 0u);
}

// ---- Security / management ----

TEST_F(ServiceFixture, CapsuleAuthoritySignsAndChecks) {
  CapsuleAuthority authority(0xbeef);
  wli::Shuttle s;
  s.code_image = {std::byte{1}, std::byte{2}, std::byte{3}};
  EXPECT_FALSE(authority.Check(s));
  authority.Sign(s);
  EXPECT_TRUE(authority.Check(s));
  s.code_image.push_back(std::byte{4});  // tamper
  EXPECT_FALSE(authority.Check(s));
}

TEST_F(ServiceFixture, WorkloadMonitorPublishesPerNode) {
  Build();
  int signals = 0;
  wn->feedback().Subscribe(wli::FeedbackDimension::kPerNode,
                           [&](const wli::FeedbackSignal&) { ++signals; });
  WorkloadMonitor monitor(*wn, 100 * sim::kMillisecond);
  monitor.Start(sim::kSecond);
  simulator.RunUntil(sim::kSecond);
  EXPECT_GE(signals, 5 * 9);  // 5 ships x ~10 samples (allow slack)
  EXPECT_EQ(monitor.samples_published(), static_cast<std::uint64_t>(signals));
}

}  // namespace
}  // namespace viator::services
