// Tests for the WanderScript VM: assembler, program codec, verifier,
// interpreter semantics, fuel metering and the code repository/cache.
#include <gtest/gtest.h>

#include <vector>

#include "vm/assembler.h"
#include "vm/code_repository.h"
#include "vm/interpreter.h"
#include "vm/isa.h"
#include "vm/program.h"
#include "vm/verifier.h"

namespace viator::vm {
namespace {

// Assembles, verifies and runs a program; EXPECTs a clean halt.
std::int64_t RunSource(std::string_view source,
                       std::vector<std::int64_t> args = {}) {
  auto program = Assemble("test", source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto verified = Verify(*program);
  EXPECT_TRUE(verified.ok()) << verified.status().ToString();
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env, kDefaultFuel, args);
  EXPECT_EQ(result.reason, ExitReason::kHalted) << result.fault_message;
  return result.top_of_stack;
}

// ---- Assembler ----

TEST(Assembler, BasicProgram) {
  auto program = Assemble("p", "push 2\npush 3\nadd\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code().size(), 4u);
  EXPECT_EQ(program->code()[0].opcode, Opcode::kPush);
}

TEST(Assembler, CommentsAndBlankLines) {
  auto program = Assemble("p", R"(
; leading comment
push 1   ; trailing comment
# hash comment too

halt
)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code().size(), 2u);
}

TEST(Assembler, LabelsResolve) {
  auto program = Assemble("p", R"(
  push 3
loop:
  push -1
  add
  dup
  jnz loop
  halt
)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code()[4].opcode, Opcode::kJnz);
  EXPECT_EQ(program->code()[4].operand, 1);  // label "loop"
}

TEST(Assembler, UndefinedLabelFails) {
  auto program = Assemble("p", "jmp nowhere\nhalt\n");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("nowhere"), std::string::npos);
}

TEST(Assembler, DuplicateLabelFails) {
  EXPECT_FALSE(Assemble("p", "a:\nnop\na:\nhalt\n").ok());
}

TEST(Assembler, UnknownMnemonicFailsWithLine) {
  auto program = Assemble("p", "nop\nfrobnicate\n");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

TEST(Assembler, SyscallByName) {
  auto program = Assemble("p", "sys node_id\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code()[0].operand,
            static_cast<std::int32_t>(Syscall::kNodeId));
}

TEST(Assembler, UnknownSyscallFails) {
  EXPECT_FALSE(Assemble("p", "sys not_a_syscall\nhalt\n").ok());
}

TEST(Assembler, WideImmediateSpillsToPool) {
  auto program = Assemble("p", "push 123456789012345\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->code()[0].opcode, Opcode::kPushC);
  ASSERT_EQ(program->constants().size(), 1u);
  EXPECT_EQ(program->constants()[0], 123456789012345);
}

TEST(Assembler, MissingOperandFails) {
  EXPECT_FALSE(Assemble("p", "push\nhalt\n").ok());
}

TEST(Assembler, UnexpectedOperandFails) {
  EXPECT_FALSE(Assemble("p", "add 3\nhalt\n").ok());
}

TEST(Assembler, DisassembleRoundTrip) {
  const std::string_view source = R"(
  push 10
loop:
  push -1
  add
  dup
  jnz loop
  sys emit
  halt
)";
  auto program = Assemble("p", source);
  ASSERT_TRUE(program.ok());
  const std::string listing = Disassemble(*program);
  auto reparsed = Assemble("p", listing);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(program->code(), reparsed->code());
}

// ---- Program codec ----

TEST(Program, SerializeDeserializeRoundTrip) {
  auto program = Assemble("roundtrip", "pushc 99999999999\nsys emit\nhalt\n");
  ASSERT_TRUE(program.ok());
  const auto bytes = program->Serialize();
  auto restored = Program::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->name(), "roundtrip");
  EXPECT_EQ(restored->code(), program->code());
  EXPECT_EQ(restored->constants(), program->constants());
  EXPECT_EQ(restored->digest(), program->digest());
}

TEST(Program, DigestIsContentAddressed) {
  auto a = Assemble("same-name", "push 1\nhalt\n");
  auto b = Assemble("same-name", "push 2\nhalt\n");
  auto c = Assemble("same-name", "push 1\nhalt\n");
  EXPECT_NE(a->digest(), b->digest());
  EXPECT_EQ(a->digest(), c->digest());
}

TEST(Program, DeserializeRejectsCorruption) {
  auto program = Assemble("p", "push 1\nhalt\n");
  auto bytes = program->Serialize();
  bytes[10] ^= std::byte{0x55};
  EXPECT_FALSE(Program::Deserialize(bytes).ok());
}

// ---- Verifier ----

TEST(Verifier, AcceptsStraightLine) {
  auto program = Assemble("p", "push 1\npush 2\nadd\nhalt\n");
  auto info = Verify(*program);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->max_stack_depth, 2u);
}

TEST(Verifier, RejectsEmpty) {
  EXPECT_FALSE(Verify(Program("p", {})).ok());
}

TEST(Verifier, RejectsStackUnderflow) {
  auto program = Assemble("p", "add\nhalt\n");
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Verifier, RejectsUnderflowOnBranchPath) {
  // The fall-through path pops twice with only one push.
  auto program = Assemble("p", R"(
  push 1
  jz skip
  pop
  pop
skip:
  halt
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Verifier, RejectsInconsistentDepthAtJoin) {
  // Join point sees depth 1 from one path and 0 from the other.
  std::vector<Instruction> code = {
      {Opcode::kPush, 1},   // 0: depth 1
      {Opcode::kJz, 3},     // 1: consumes, depth 0 both ways
      {Opcode::kPush, 7},   // 2: depth 1, falls into 3
      {Opcode::kHalt, 0},   // 3: depth 0 from jump, 1 from fall-through
  };
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsJumpOutOfRange) {
  std::vector<Instruction> code = {{Opcode::kJmp, 99}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsBadLocalSlot) {
  std::vector<Instruction> code = {{Opcode::kLoad, 500}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsBadConstantIndex) {
  std::vector<Instruction> code = {{Opcode::kPushC, 3}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsBadSyscallId) {
  std::vector<Instruction> code = {{Opcode::kSys, 999}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsBadOpcode) {
  std::vector<Instruction> code = {
      {static_cast<Opcode>(200), 0}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsOverlongProgram) {
  std::vector<Instruction> code(kMaxProgramLength + 1, {Opcode::kNop, 0});
  code.push_back({Opcode::kHalt, 0});
  EXPECT_FALSE(Verify(Program("p", code)).ok());
}

TEST(Verifier, RejectsUnboundedStackGrowth) {
  // A loop that pushes each iteration cannot have a consistent depth.
  auto program = Assemble("p", R"(
loop:
  push 1
  jmp loop
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Verifier, AcceptsBalancedLoop) {
  auto program = Assemble("p", R"(
  push 10
loop:
  push -1
  add
  dup
  jnz loop
  halt
)");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(Verify(*program).ok());
}

TEST(Verifier, CountsSyscallSites) {
  auto program = Assemble("p", "sys node_id\npop\nsys time\npop\nhalt\n");
  auto info = Verify(*program);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->syscall_sites, 2u);
}

// ---- Interpreter semantics ----

TEST(Interpreter, Arithmetic) {
  EXPECT_EQ(RunSource("push 6\npush 7\nmul\nhalt\n"), 42);
  EXPECT_EQ(RunSource("push 10\npush 3\ndiv\nhalt\n"), 3);
  EXPECT_EQ(RunSource("push 10\npush 3\nmod\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 10\npush 3\nsub\nhalt\n"), 7);
  EXPECT_EQ(RunSource("push 5\nneg\nhalt\n"), -5);
}

TEST(Interpreter, DivisionByZeroYieldsZero) {
  EXPECT_EQ(RunSource("push 10\npush 0\ndiv\nhalt\n"), 0);
  EXPECT_EQ(RunSource("push 10\npush 0\nmod\nhalt\n"), 0);
}

TEST(Interpreter, SignedOverflowIsDefined) {
  // INT64_MIN / -1 saturates instead of trapping.
  auto program = Assemble("p", "pushc -9223372036854775808\npush -1\ndiv\nhalt\n");
  ASSERT_TRUE(program.ok());
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.reason, ExitReason::kHalted);
  EXPECT_EQ(result.top_of_stack, INT64_MAX);
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(RunSource("push 3\npush 3\neq\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 3\npush 4\nlt\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 3\npush 4\nge\nhalt\n"), 0);
  EXPECT_EQ(RunSource("push -1\npush 1\nle\nhalt\n"), 1);
}

TEST(Interpreter, Bitwise) {
  EXPECT_EQ(RunSource("push 12\npush 10\nand\nhalt\n"), 8);
  EXPECT_EQ(RunSource("push 12\npush 10\nor\nhalt\n"), 14);
  EXPECT_EQ(RunSource("push 12\npush 10\nxor\nhalt\n"), 6);
  EXPECT_EQ(RunSource("push 1\npush 4\nshl\nhalt\n"), 16);
  EXPECT_EQ(RunSource("push 16\npush 4\nshr\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 0\nnot\nhalt\n"), -1);
}

TEST(Interpreter, ShiftCountsAreMasked) {
  EXPECT_EQ(RunSource("push 1\npush 64\nshl\nhalt\n"), 1);  // 64 & 63 == 0
}

TEST(Interpreter, StackOps) {
  EXPECT_EQ(RunSource("push 1\npush 2\nswap\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 1\npush 2\nover\nhalt\n"), 1);
  EXPECT_EQ(RunSource("push 7\ndup\nadd\nhalt\n"), 14);
  EXPECT_EQ(RunSource("push 1\npush 2\npop\nhalt\n"), 1);
}

TEST(Interpreter, LocalsAndArguments) {
  EXPECT_EQ(RunSource("load 0\nload 1\nadd\nhalt\n", {30, 12}), 42);
  EXPECT_EQ(RunSource("push 9\nstore 5\nload 5\nhalt\n"), 9);
}

TEST(Interpreter, LoopComputesSum) {
  // Sum 1..10 = 55, using locals 0 (i) and 1 (acc).
  const std::string_view source = R"(
  push 10
  store 0
loop:
  load 0
  jz done
  load 0
  load 1
  add
  store 1
  load 0
  push -1
  add
  store 0
  jmp loop
done:
  load 1
  halt
)";
  EXPECT_EQ(RunSource(source), 55);
}

TEST(Interpreter, FallOffEndHalts) {
  auto program = Assemble("p", "push 5\n");
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.reason, ExitReason::kHalted);
  EXPECT_EQ(result.top_of_stack, 5);
}

TEST(Interpreter, FuelLimitsInfiniteLoop) {
  auto program = Assemble("p", "loop:\njmp loop\n");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verify(*program).ok());
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env, 1000);
  EXPECT_EQ(result.reason, ExitReason::kOutOfFuel);
  EXPECT_EQ(result.fuel_used, 1000u);
}

TEST(Interpreter, FuelCountsInstructions) {
  auto program = Assemble("p", "push 1\npush 2\nadd\nhalt\n");
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.fuel_used, 4u);
}

TEST(Interpreter, SyscallFailureFaults) {
  struct FailingEnv : Environment {
    Result<std::int64_t> Invoke(Syscall,
                                std::span<const std::int64_t>) override {
      return Status(PermissionDenied("no"));
    }
  };
  auto program = Assemble("p", "sys node_id\nhalt\n");
  FailingEnv env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.reason, ExitReason::kFault);
  EXPECT_NE(result.fault_message.find("node_id"), std::string::npos);
}

TEST(Interpreter, SyscallArgumentsArriveInOrder) {
  struct CapturingEnv : Environment {
    std::vector<std::int64_t> captured;
    Result<std::int64_t> Invoke(Syscall id,
                                std::span<const std::int64_t> args) override {
      if (id == Syscall::kPutFact) {
        captured.assign(args.begin(), args.end());
      }
      return std::int64_t{1};
    }
  };
  auto program = Assemble("p", "push 10\npush 20\npush 30\nsys put_fact\nhalt\n");
  CapturingEnv env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.reason, ExitReason::kHalted);
  EXPECT_EQ(env.captured, (std::vector<std::int64_t>{10, 20, 30}));
}

TEST(Interpreter, DefaultEnvironmentReturnsZero) {
  EXPECT_EQ(RunSource("sys neighbor_count\nhalt\n"), 0);
}

// Property sweep: all binary arithmetic ops agree with native semantics on
// a set of tricky operand pairs.
struct BinOpCase {
  const char* mnemonic;
  std::int64_t a, b, expected;
};

class BinOpSweep : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinOpSweep, MatchesExpected) {
  const auto& c = GetParam();
  const std::string source = "pushc " + std::to_string(c.a) + "\npushc " +
                             std::to_string(c.b) + "\n" + c.mnemonic +
                             "\nhalt\n";
  EXPECT_EQ(RunSource(source), c.expected)
      << c.a << " " << c.mnemonic << " " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinOpSweep,
    ::testing::Values(
        BinOpCase{"add", INT64_MAX, 1, INT64_MIN},  // wraparound defined
        BinOpCase{"sub", INT64_MIN, 1, INT64_MAX},
        BinOpCase{"mul", 1L << 40, 1L << 40, 0},
        BinOpCase{"div", -7, 2, -3},
        BinOpCase{"mod", -7, 2, -1},
        BinOpCase{"div", 7, -2, -3},
        BinOpCase{"and", -1, 0x0f0f, 0x0f0f},
        BinOpCase{"xor", -1, -1, 0},
        BinOpCase{"lt", INT64_MIN, INT64_MAX, 1},
        BinOpCase{"gt", 0, INT64_MIN, 1}));

// ---- Subroutines (call/ret) ----

TEST(Subroutines, CallAndReturn) {
  // double(x): locals[1] = locals[1] * 2 (args via locals; stack-neutral).
  const std::string_view source = R"(
  push 21
  store 1
  call double
  load 1
  halt
double:
  load 1
  dup
  add
  store 1
  ret
)";
  EXPECT_EQ(RunSource(source), 42);
}

TEST(Subroutines, NestedCalls) {
  const std::string_view source = R"(
  push 5
  store 1
  call outer
  load 1
  halt
outer:
  call inner
  call inner
  ret
inner:
  load 1
  push 1
  add
  store 1
  ret
)";
  EXPECT_EQ(RunSource(source), 7);
}

TEST(Subroutines, RecursionIsFuelAndDepthBounded) {
  // Unbounded recursion: the call-depth guard faults before fuel runs out.
  auto program = Assemble("rec", R"(
  call self
  halt
self:
  call self
  ret
)");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(Verify(*program).ok()) << Verify(*program).status().ToString();
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(*program, env);
  EXPECT_EQ(result.reason, ExitReason::kFault);
  EXPECT_NE(result.fault_message.find("call depth"), std::string::npos);
}

TEST(Subroutines, VerifierRejectsNonNeutralSubroutine) {
  // Subroutine leaves one extra value on the stack.
  auto program = Assemble("bad", R"(
  call leaky
  halt
leaky:
  push 1
  ret
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Subroutines, VerifierRejectsSubroutinePoppingCallerValues) {
  auto program = Assemble("bad", R"(
  push 9
  call thief
  pop
  halt
thief:
  pop
  push 1
  ret
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Subroutines, VerifierRejectsBareRet) {
  auto program = Assemble("bad", "ret\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Subroutines, VerifierRejectsFallThroughIntoSubroutine) {
  // Main flow reaches the subroutine's ret without a call.
  auto program = Assemble("bad", R"(
  call sub
sub:
  nop
  ret
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Verify(*program).ok());
}

TEST(Subroutines, RuntimeGuardsBareRet) {
  // Hand-built (unverified) code: the interpreter still refuses.
  std::vector<Instruction> code = {{Opcode::kRet, 0}, {Opcode::kHalt, 0}};
  Environment env;
  Interpreter interp;
  const auto result = interp.Run(Program("raw", code), env);
  EXPECT_EQ(result.reason, ExitReason::kFault);
}

// ---- Code repository & cache ----

TEST(CodeRepository, InstallAndFind) {
  CodeRepository repo;
  auto program = Assemble("p", "push 1\nhalt\n");
  auto digest = repo.Install(*program);
  ASSERT_TRUE(digest.ok());
  EXPECT_NE(repo.Find(*digest), nullptr);
  EXPECT_EQ(repo.Find(12345), nullptr);
}

TEST(CodeRepository, RejectsUnverifiable) {
  CodeRepository repo;
  std::vector<Instruction> bad = {{Opcode::kAdd, 0}, {Opcode::kHalt, 0}};
  EXPECT_FALSE(repo.Install(Program("bad", bad)).ok());
  EXPECT_EQ(repo.size(), 0u);
}

TEST(CodeCache, HitsAndMisses) {
  CodeCache cache(4096);
  auto program = Assemble("p", "push 1\nhalt\n");
  EXPECT_EQ(cache.Get(program->digest()), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_TRUE(cache.Put(*program).ok());
  EXPECT_NE(cache.Get(program->digest()), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(CodeCache, LruEviction) {
  // Cache sized to hold roughly two small programs.
  auto p1 = Assemble("p1", "push 1\nhalt\n");
  auto p2 = Assemble("p2", "push 2\nhalt\n");
  auto p3 = Assemble("p3", "push 3\nhalt\n");
  CodeCache cache(p1->WireSize() + p2->WireSize() + 4);
  ASSERT_TRUE(cache.Put(*p1).ok());
  ASSERT_TRUE(cache.Put(*p2).ok());
  // Touch p1 so p2 becomes LRU.
  EXPECT_NE(cache.Get(p1->digest()), nullptr);
  ASSERT_TRUE(cache.Put(*p3).ok());
  EXPECT_TRUE(cache.Contains(p1->digest()));
  EXPECT_FALSE(cache.Contains(p2->digest()));
  EXPECT_TRUE(cache.Contains(p3->digest()));
}

TEST(CodeCache, RejectsOversized) {
  CodeCache cache(8);
  auto program = Assemble("p", "push 1\nhalt\n");
  EXPECT_EQ(cache.Put(*program).code(), StatusCode::kResourceExhausted);
}

TEST(CodeCache, PutIsIdempotent) {
  CodeCache cache(4096);
  auto program = Assemble("p", "push 1\nhalt\n");
  ASSERT_TRUE(cache.Put(*program).ok());
  const auto used = cache.bytes_used();
  ASSERT_TRUE(cache.Put(*program).ok());
  EXPECT_EQ(cache.bytes_used(), used);
  EXPECT_EQ(cache.entry_count(), 1u);
}

}  // namespace
}  // namespace viator::vm
