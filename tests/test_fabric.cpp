// Tests for the fabric transmission model, mobility and failure injection.
#include <gtest/gtest.h>

#include <string>

#include "net/fabric.h"
#include "net/failure.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace viator::net {
namespace {

struct FabricFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::StatsRegistry stats;

  Frame MakeFrame(NodeId from, NodeId to, std::uint32_t size,
                  std::string tag = "") {
    Frame f;
    f.from = from;
    f.to = to;
    f.size_bytes = size;
    f.payload = tag;
    return f;
  }
};

TEST_F(FabricFixture, DeliversWithSerializationPlusLatency) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;            // 1 MB/s
  cfg.latency = 10 * sim::kMillisecond;
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(1), stats);

  sim::TimePoint delivered_at = 0;
  fabric.SetReceiveHandler(1, [&](const Frame&) {
    delivered_at = simulator.now();
  });
  ASSERT_TRUE(fabric.Send(MakeFrame(0, 1, 1000)).ok());
  simulator.RunAll();
  // 1000 B at 1 MB/s = 1 ms serialization + 10 ms propagation.
  EXPECT_EQ(delivered_at, 11 * sim::kMillisecond);
  EXPECT_EQ(fabric.frames_delivered(), 1u);
}

TEST_F(FabricFixture, BackToBackFramesQueue) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.latency = 0;
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(1), stats);

  std::vector<sim::TimePoint> deliveries;
  fabric.SetReceiveHandler(1, [&](const Frame&) {
    deliveries.push_back(simulator.now());
  });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fabric.Send(MakeFrame(0, 1, 1000)).ok());
  }
  simulator.RunAll();
  ASSERT_EQ(deliveries.size(), 3u);
  // Serialized one after another: 1ms, 2ms, 3ms.
  EXPECT_EQ(deliveries[0], 1 * sim::kMillisecond);
  EXPECT_EQ(deliveries[1], 2 * sim::kMillisecond);
  EXPECT_EQ(deliveries[2], 3 * sim::kMillisecond);
}

TEST_F(FabricFixture, QueueOverflowDrops) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e3;  // very slow: 1 KB/s
  cfg.queue_capacity_bytes = 2500;
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(1), stats);
  int delivered = 0;
  fabric.SetReceiveHandler(1, [&](const Frame&) { ++delivered; });

  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    if (fabric.Send(MakeFrame(0, 1, 1000)).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 2);  // 2 * 1000 <= 2500 < 3 * 1000
  EXPECT_GE(fabric.frames_dropped(), 3u);
  simulator.RunAll();
  EXPECT_EQ(delivered, 2);
}

TEST_F(FabricFixture, NoLinkMeansDrop) {
  Topology t;
  t.AddNodes(2);  // no link
  Fabric fabric(simulator, t, Rng(1), stats);
  EXPECT_EQ(fabric.Send(MakeFrame(0, 1, 100)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fabric.frames_dropped(), 1u);
}

TEST_F(FabricFixture, LossyLinkLosesAboutTheRightFraction) {
  LinkConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.latency = 0;
  cfg.bandwidth_bps = 1e12;
  cfg.queue_capacity_bytes = 1 << 30;
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(42), stats);
  int delivered = 0;
  fabric.SetReceiveHandler(1, [&](const Frame&) { ++delivered; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    (void)fabric.Send(MakeFrame(0, 1, 10));
  }
  simulator.RunAll();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.03);
}

TEST_F(FabricFixture, LinkDownMidFlightLosesFrame) {
  LinkConfig cfg;
  cfg.latency = 10 * sim::kMillisecond;
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(1), stats);
  int delivered = 0;
  fabric.SetReceiveHandler(1, [&](const Frame&) { ++delivered; });
  ASSERT_TRUE(fabric.Send(MakeFrame(0, 1, 100)).ok());
  simulator.ScheduleAt(5 * sim::kMillisecond,
                       [&] { t.SetLinkUp(0, false); });
  simulator.RunAll();
  EXPECT_EQ(delivered, 0);
}

TEST_F(FabricFixture, PayloadSurvivesTransit) {
  Topology t = MakeLine(2);
  Fabric fabric(simulator, t, Rng(1), stats);
  std::string received;
  fabric.SetReceiveHandler(1, [&](const Frame& f) {
    received = std::any_cast<std::string>(f.payload);
  });
  ASSERT_TRUE(fabric.Send(MakeFrame(0, 1, 64, "hello")).ok());
  simulator.RunAll();
  EXPECT_EQ(received, "hello");
}

TEST_F(FabricFixture, BroadcastReachesAllNeighbors) {
  Topology t = MakeStar(5);
  Fabric fabric(simulator, t, Rng(1), stats);
  int received = 0;
  for (NodeId n = 1; n < 5; ++n) {
    fabric.SetReceiveHandler(n, [&](const Frame&) { ++received; });
  }
  EXPECT_EQ(fabric.Broadcast(0, MakeFrame(kInvalidNode, kInvalidNode, 64)),
            4u);
  simulator.RunAll();
  EXPECT_EQ(received, 4);
}

TEST_F(FabricFixture, QueuedBytesVisible) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e3;  // slow so bytes linger in the queue
  Topology t = MakeLine(2, cfg);
  Fabric fabric(simulator, t, Rng(1), stats);
  (void)fabric.Send(MakeFrame(0, 1, 500));
  EXPECT_EQ(fabric.QueuedBytesAt(0), 500u);
  EXPECT_EQ(fabric.QueuedBytesAt(1), 0u);
  simulator.RunAll();
  EXPECT_EQ(fabric.QueuedBytesAt(0), 0u);
}

TEST_F(FabricFixture, LinkBytesAccountPerLink) {
  Topology t = MakeLine(3);
  Fabric fabric(simulator, t, Rng(1), stats);
  fabric.SetReceiveHandler(1, [](const Frame&) {});
  (void)fabric.Send(MakeFrame(0, 1, 100));
  (void)fabric.Send(MakeFrame(1, 2, 200));
  simulator.RunAll();
  EXPECT_EQ(fabric.link_bytes()[0], 100u);
  EXPECT_EQ(fabric.link_bytes()[1], 200u);
  EXPECT_EQ(fabric.bytes_sent(), 300u);
}

// ---- Mobility ----

TEST(Mobility, NodesStayInBounds) {
  RandomWaypointMobility::Config cfg;
  cfg.width_m = 100;
  cfg.height_m = 50;
  RandomWaypointMobility mob(20, cfg, Rng(3));
  for (int step = 0; step < 200; ++step) {
    mob.Step(1.0);
    for (const auto& p : mob.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 100.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 50.0);
    }
  }
}

TEST(Mobility, NodesActuallyMove) {
  RandomWaypointMobility::Config cfg;
  cfg.min_speed_mps = 5.0;
  cfg.max_speed_mps = 10.0;
  cfg.pause_s = 0.0;
  RandomWaypointMobility mob(5, cfg, Rng(4));
  const auto before = mob.positions();
  mob.Step(10.0);
  const auto& after = mob.positions();
  double moved = 0.0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    moved += Distance(before[i], after[i]);
  }
  EXPECT_GT(moved, 1.0);
}

TEST(Mobility, PinnedNodeStaysPut) {
  RandomWaypointMobility mob(3, {}, Rng(5));
  mob.Pin(0);
  const auto before = mob.positions()[0];
  mob.Step(30.0);
  EXPECT_DOUBLE_EQ(mob.positions()[0].x, before.x);
  EXPECT_DOUBLE_EQ(mob.positions()[0].y, before.y);
}

TEST(Mobility, AdhocManagerTogglesLinks) {
  sim::Simulator simulator;
  Topology topology;
  topology.AddNodes(10);
  RandomWaypointMobility::Config cfg;
  cfg.width_m = 300;
  cfg.height_m = 300;
  cfg.min_speed_mps = 20.0;
  cfg.max_speed_mps = 40.0;
  cfg.pause_s = 0.0;
  RandomWaypointMobility mob(10, cfg, Rng(6));
  AdhocManager manager(simulator, topology, std::move(mob), 120.0,
                       sim::kSecond, LinkConfig{});
  manager.Start(30 * sim::kSecond);
  simulator.RunUntil(30 * sim::kSecond);
  // Fast nodes in a small arena must cause link churn.
  EXPECT_GT(manager.link_transitions(), 0u);
}

// ---- Failure injection ----

TEST(Failure, DeterministicLinkOutage) {
  sim::Simulator simulator;
  Topology t = MakeLine(2);
  FailureInjector injector(simulator, t, Rng(1));
  injector.FailLink(0, 10 * sim::kMillisecond, 20 * sim::kMillisecond);
  simulator.RunUntil(15 * sim::kMillisecond);
  EXPECT_FALSE(t.IsLinkUp(0));
  simulator.RunUntil(40 * sim::kMillisecond);
  EXPECT_TRUE(t.IsLinkUp(0));
  EXPECT_EQ(injector.failures_injected(), 1u);
}

TEST(Failure, NodeOutageAndObserver) {
  sim::Simulator simulator;
  Topology t = MakeLine(3);
  FailureInjector injector(simulator, t, Rng(1));
  std::vector<std::string> events;
  injector.set_observer([&](const char* kind, std::uint32_t id, bool up) {
    events.push_back(std::string(kind) + ":" + std::to_string(id) + ":" +
                     (up ? "up" : "down"));
  });
  injector.FailNode(1, 5, 10);
  simulator.RunAll();
  EXPECT_TRUE(t.IsNodeUp(1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "node:1:down");
  EXPECT_EQ(events[1], "node:1:up");
}

TEST(Failure, RandomProcessInjectsAndRepairs) {
  sim::Simulator simulator;
  Topology t = MakeRing(8);
  FailureInjector injector(simulator, t, Rng(77));
  injector.StartRandomLinkFailures(2 * sim::kSecond, sim::kSecond,
                                   20 * sim::kSecond);
  simulator.RunUntil(20 * sim::kSecond);
  EXPECT_GT(injector.failures_injected(), 0u);
  // Eventually everything repairs (no failure scheduled past the horizon).
  simulator.RunAll();
  for (LinkId l = 0; l < t.link_count(); ++l) EXPECT_TRUE(t.IsLinkUp(l));
}

}  // namespace
}  // namespace viator::net
