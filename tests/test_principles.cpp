// Tests for the four WLI principle engines (DCP, SRP, MFP, PMP policies)
// and the overlay manager.
#include <gtest/gtest.h>

#include "core/dcp.h"
#include "core/mfp.h"
#include "core/overlay.h"
#include "core/pmp.h"
#include "core/srp.h"
#include "net/topology.h"

namespace viator::wli {
namespace {

// ---- DCP ----

TEST(Dcp, DefaultInterfaceAlwaysMatches) {
  MorphingEngine engine;
  Shuttle s;
  const auto outcome = engine.MorphForDock(s);
  EXPECT_TRUE(outcome.success);
  EXPECT_TRUE(outcome.already_matched);
  EXPECT_EQ(outcome.overhead_bytes, 0u);
}

TEST(Dcp, MorphRewritesInterface) {
  MorphingEngine engine;
  engine.SetRequiredInterface(node::ShipClass::kServer, 5);
  engine.AddAdapter(0, 5, 16, sim::kMicrosecond);
  Shuttle s;
  s.header.dest_class_hint = node::ShipClass::kServer;
  const auto outcome = engine.MorphForDock(s);
  EXPECT_TRUE(outcome.success);
  EXPECT_FALSE(outcome.already_matched);
  EXPECT_EQ(outcome.overhead_bytes, 16u);
  EXPECT_EQ(s.header.interface_id, 5u);
}

TEST(Dcp, MissingAdapterFailsDock) {
  MorphingEngine engine;
  engine.SetRequiredInterface(node::ShipClass::kAgent, 9);
  Shuttle s;
  s.header.dest_class_hint = node::ShipClass::kAgent;
  EXPECT_FALSE(engine.MorphForDock(s).success);
  EXPECT_EQ(engine.morphs_failed(), 1u);
  EXPECT_EQ(s.header.interface_id, 0u);  // unchanged on failure
}

TEST(Dcp, PerClassRequirements) {
  MorphingEngine engine;
  engine.SetRequiredInterface(node::ShipClass::kServer, 1);
  engine.SetRequiredInterface(node::ShipClass::kClient, 2);
  EXPECT_EQ(engine.RequiredInterface(node::ShipClass::kServer), 1u);
  EXPECT_EQ(engine.RequiredInterface(node::ShipClass::kClient), 2u);
  EXPECT_EQ(engine.RequiredInterface(node::ShipClass::kAgent), 0u);
}

TEST(Dcp, CongruenceConvergesOnStableTraffic) {
  // A priori ship adaptation: steady traffic drives the score toward 1.
  CongruenceTracker tracker(0.2);
  for (int i = 0; i < 100; ++i) tracker.Observe(3);
  EXPECT_EQ(tracker.predicted(), 3u);
  EXPECT_GT(tracker.score(), 0.9);
}

TEST(Dcp, CongruenceAdaptsToTrafficShift) {
  CongruenceTracker tracker(0.3);
  for (int i = 0; i < 50; ++i) tracker.Observe(1);
  EXPECT_EQ(tracker.predicted(), 1u);
  for (int i = 0; i < 50; ++i) tracker.Observe(2);
  EXPECT_EQ(tracker.predicted(), 2u);
}

TEST(Dcp, CongruenceLowUnderMixedTraffic) {
  CongruenceTracker tracker(0.2);
  for (int i = 0; i < 200; ++i) tracker.Observe(i % 4);
  EXPECT_LT(tracker.score(), 0.6);
}

// ---- SRP ----

TEST(Srp, ReputationStartsNeutral) {
  ReputationSystem rep;
  EXPECT_DOUBLE_EQ(rep.ScoreOf(5), 0.5);
  EXPECT_FALSE(rep.IsExcluded(5));
}

TEST(Srp, UnfairShipsGetExcluded) {
  // Def. 2(1): unfair ships are "excluded from the community".
  ReputationSystem rep;
  for (int i = 0; i < 20; ++i) rep.ReportInteraction(7, false);
  EXPECT_TRUE(rep.IsExcluded(7));
  EXPECT_LT(rep.ScoreOf(7), 0.2);
  EXPECT_EQ(rep.excluded_count(), 1u);
}

TEST(Srp, FairShipsStay) {
  ReputationSystem rep;
  for (int i = 0; i < 20; ++i) rep.ReportInteraction(7, true);
  EXPECT_FALSE(rep.IsExcluded(7));
  EXPECT_GT(rep.ScoreOf(7), 0.9);
}

TEST(Srp, ReadmissionHasHysteresis) {
  ReputationConfig cfg;
  ReputationSystem rep(cfg);
  for (int i = 0; i < 20; ++i) rep.ReportInteraction(7, false);
  ASSERT_TRUE(rep.IsExcluded(7));
  // A few good reports are not enough (score must cross the readmission
  // threshold, not just the exclusion one).
  rep.ReportInteraction(7, true);
  EXPECT_TRUE(rep.IsExcluded(7));
  for (int i = 0; i < 10; ++i) rep.ReportInteraction(7, true);
  EXPECT_FALSE(rep.IsExcluded(7));
}

TEST(Srp, ClustersFormFromInteractions) {
  ClusterManager clusters;
  for (int i = 0; i < 5; ++i) {
    clusters.ObserveInteraction(1, 2);
    clusters.ObserveInteraction(2, 3);
    clusters.ObserveInteraction(8, 9);
  }
  const auto groups = clusters.Clusters(3.0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<net::NodeId>{1, 2, 3}));
  EXPECT_EQ(groups[1], (std::vector<net::NodeId>{8, 9}));
}

TEST(Srp, ClustersAreTemporary) {
  // Affinities decay, so clusters dissolve without refresh (Def. 2(2):
  // temporary aggregations).
  ClusterManager clusters(0.5);
  for (int i = 0; i < 4; ++i) clusters.ObserveInteraction(1, 2);
  EXPECT_EQ(clusters.Clusters(2.0).size(), 1u);
  clusters.Decay();
  clusters.Decay();
  EXPECT_EQ(clusters.Clusters(2.0).size(), 0u);
  EXPECT_LT(clusters.AffinityBetween(1, 2), 2.0);
}

TEST(Srp, SelfInteractionIgnored) {
  ClusterManager clusters;
  clusters.ObserveInteraction(1, 1, 100.0);
  EXPECT_EQ(clusters.Clusters(1.0).size(), 0u);
}

// ---- MFP ----

TEST(Mfp, SubscribeAndPublish) {
  FeedbackBus bus;
  double last = 0;
  bus.Subscribe(FeedbackDimension::kPerNode,
                [&](const FeedbackSignal& s) { last = s.value; });
  bus.Publish({FeedbackDimension::kPerNode, 1, 0, 42.0, 0});
  EXPECT_DOUBLE_EQ(last, 42.0);
  EXPECT_EQ(bus.published(), 1u);
  EXPECT_EQ(bus.delivered(), 1u);
}

TEST(Mfp, DimensionsAreIsolated) {
  FeedbackBus bus;
  int node_signals = 0, packet_signals = 0;
  bus.Subscribe(FeedbackDimension::kPerNode,
                [&](const FeedbackSignal&) { ++node_signals; });
  bus.Subscribe(FeedbackDimension::kPerPacket,
                [&](const FeedbackSignal&) { ++packet_signals; });
  bus.Publish({FeedbackDimension::kPerNode, 0, 0, 1.0, 0});
  bus.Publish({FeedbackDimension::kPerNode, 0, 0, 1.0, 0});
  bus.Publish({FeedbackDimension::kPerPacket, 0, 0, 1.0, 0});
  EXPECT_EQ(node_signals, 2);
  EXPECT_EQ(packet_signals, 1);
}

TEST(Mfp, DisabledDimensionSuppresses) {
  FeedbackBus bus;
  int received = 0;
  bus.Subscribe(FeedbackDimension::kPerSession,
                [&](const FeedbackSignal&) { ++received; });
  bus.EnableDimension(FeedbackDimension::kPerSession, false);
  bus.Publish({FeedbackDimension::kPerSession, 0, 0, 1.0, 0});
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.suppressed(), 1u);
  bus.EnableDimension(FeedbackDimension::kPerSession, true);
  bus.Publish({FeedbackDimension::kPerSession, 0, 0, 1.0, 0});
  EXPECT_EQ(received, 1);
}

TEST(Mfp, UnsubscribeStopsDelivery) {
  FeedbackBus bus;
  int received = 0;
  const auto id = bus.Subscribe(FeedbackDimension::kPerNode,
                                [&](const FeedbackSignal&) { ++received; });
  bus.Publish({FeedbackDimension::kPerNode, 0, 0, 1.0, 0});
  bus.Unsubscribe(id);
  bus.Publish({FeedbackDimension::kPerNode, 0, 0, 1.0, 0});
  EXPECT_EQ(received, 1);
}

TEST(Mfp, AllDimensionsHaveNames) {
  for (int d = 0; d < static_cast<int>(FeedbackDimension::kDimensionCount);
       ++d) {
    EXPECT_NE(FeedbackDimensionName(static_cast<FeedbackDimension>(d)), "?");
  }
}

TEST(Mfp, AimdIncreasesAndDecreases) {
  AimdRate rate(1.0, 0.1, 2.0, 0.1, 0.5);
  rate.OnSuccess();
  EXPECT_DOUBLE_EQ(rate.rate(), 1.1);
  rate.OnCongestion();
  EXPECT_DOUBLE_EQ(rate.rate(), 0.55);
  for (int i = 0; i < 100; ++i) rate.OnSuccess();
  EXPECT_DOUBLE_EQ(rate.rate(), 2.0);  // capped
  for (int i = 0; i < 100; ++i) rate.OnCongestion();
  EXPECT_DOUBLE_EQ(rate.rate(), 0.1);  // floored
}

// ---- PMP policies ----

TEST(Pmp, DemandTrackerAccumulatesAndDecays) {
  DemandTracker demand(0.5);
  demand.Record(1, node::FirstLevelRole::kFusion, 10.0);
  demand.Record(1, node::FirstLevelRole::kFusion, 5.0);
  EXPECT_DOUBLE_EQ(demand.DemandAt(1, node::FirstLevelRole::kFusion), 15.0);
  demand.Decay();
  EXPECT_DOUBLE_EQ(demand.DemandAt(1, node::FirstLevelRole::kFusion), 7.5);
  EXPECT_DOUBLE_EQ(demand.TotalDemand(node::FirstLevelRole::kFusion), 7.5);
}

TEST(Pmp, HottestNodeWins) {
  DemandTracker demand;
  demand.Record(1, node::FirstLevelRole::kCaching, 3.0);
  demand.Record(2, node::FirstLevelRole::kCaching, 9.0);
  demand.Record(3, node::FirstLevelRole::kFusion, 99.0);
  EXPECT_EQ(demand.HottestNode(node::FirstLevelRole::kCaching), 2u);
  EXPECT_EQ(demand.HottestNode(node::FirstLevelRole::kDelegation),
            net::kInvalidNode);
}

TEST(Pmp, HorizontalMigratesTowardHotspot) {
  HorizontalWanderer::Config cfg;
  cfg.hysteresis = 1.5;
  cfg.min_demand = 1.0;
  HorizontalWanderer wanderer(cfg);
  DemandTracker demand;
  demand.Record(0, node::FirstLevelRole::kFusion, 2.0);   // host
  demand.Record(5, node::FirstLevelRole::kFusion, 10.0);  // hotspot
  std::map<FunctionId, net::NodeId> placement{{1, 0}};
  std::map<FunctionId, node::FirstLevelRole> roles{
      {1, node::FirstLevelRole::kFusion}};
  const auto migrations = wanderer.Decide(placement, roles, demand);
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].from, 0u);
  EXPECT_EQ(migrations[0].to, 5u);
}

TEST(Pmp, HysteresisPreventsFlapping) {
  HorizontalWanderer::Config cfg;
  cfg.hysteresis = 2.0;
  HorizontalWanderer wanderer(cfg);
  DemandTracker demand;
  demand.Record(0, node::FirstLevelRole::kFusion, 6.0);
  demand.Record(5, node::FirstLevelRole::kFusion, 10.0);  // < 2x host
  std::map<FunctionId, net::NodeId> placement{{1, 0}};
  std::map<FunctionId, node::FirstLevelRole> roles{
      {1, node::FirstLevelRole::kFusion}};
  EXPECT_TRUE(wanderer.Decide(placement, roles, demand).empty());
}

TEST(Pmp, MinDemandGatesMigration) {
  HorizontalWanderer::Config cfg;
  cfg.min_demand = 5.0;
  HorizontalWanderer wanderer(cfg);
  DemandTracker demand;
  demand.Record(5, node::FirstLevelRole::kFusion, 2.0);  // hot but tiny
  std::map<FunctionId, net::NodeId> placement{{1, 0}};
  std::map<FunctionId, node::FirstLevelRole> roles{
      {1, node::FirstLevelRole::kFusion}};
  EXPECT_TRUE(wanderer.Decide(placement, roles, demand).empty());
}

TEST(Pmp, FunctionAlreadyAtHotspotStays) {
  HorizontalWanderer wanderer;
  DemandTracker demand;
  demand.Record(0, node::FirstLevelRole::kFusion, 10.0);
  std::map<FunctionId, net::NodeId> placement{{1, 0}};
  std::map<FunctionId, node::FirstLevelRole> roles{
      {1, node::FirstLevelRole::kFusion}};
  EXPECT_TRUE(wanderer.Decide(placement, roles, demand).empty());
}

TEST(Pmp, VerticalSpawnsAboveThreshold) {
  VerticalWanderer::Config cfg;
  cfg.spawn_threshold = 5.0;
  cfg.min_members = 2;
  VerticalWanderer wanderer(cfg);
  std::map<net::NodeId, std::map<node::SecondLevelClass, double>> activity;
  activity[1][node::SecondLevelClass::kFiltering] = 4.0;
  activity[2][node::SecondLevelClass::kFiltering] = 3.0;
  activity[3][node::SecondLevelClass::kBoosting] = 1.0;  // below threshold
  const auto decisions = wanderer.Decide(activity);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].cls, node::SecondLevelClass::kFiltering);
  EXPECT_EQ(decisions[0].members, (std::vector<net::NodeId>{1, 2}));
}

TEST(Pmp, VerticalNeedsEnoughMembers) {
  VerticalWanderer::Config cfg;
  cfg.spawn_threshold = 1.0;
  cfg.min_members = 2;
  VerticalWanderer wanderer(cfg);
  std::map<net::NodeId, std::map<node::SecondLevelClass, double>> activity;
  activity[1][node::SecondLevelClass::kTranscoding] = 50.0;  // only one node
  EXPECT_TRUE(wanderer.Decide(activity).empty());
}

TEST(Pmp, ResonanceDetectsCoOccurrence) {
  ResonanceDetector::Config cfg;
  cfg.min_support = 3;
  cfg.min_jaccard = 0.5;
  ResonanceDetector detector(cfg);
  // Facts 100 and 200 co-occur on ships 1,2,3; fact 300 only on ship 9.
  for (net::NodeId ship : {1u, 2u, 3u}) {
    detector.Observe(ship, 100);
    detector.Observe(ship, 200);
  }
  detector.Observe(9, 300);
  const auto groups = detector.DetectAndReset();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<FactKey>{100, 200}));
}

TEST(Pmp, ResonanceNeedsSupport) {
  ResonanceDetector::Config cfg;
  cfg.min_support = 3;
  ResonanceDetector detector(cfg);
  for (net::NodeId ship : {1u, 2u}) {  // only 2 < min_support
    detector.Observe(ship, 100);
    detector.Observe(ship, 200);
  }
  EXPECT_TRUE(detector.DetectAndReset().empty());
}

TEST(Pmp, ResonanceNeedsOverlap) {
  ResonanceDetector::Config cfg;
  cfg.min_support = 2;
  cfg.min_jaccard = 0.9;
  ResonanceDetector detector(cfg);
  // Facts overlap on 2 ships but each also appears on 3 disjoint others:
  // jaccard = 2/8 < 0.9.
  for (net::NodeId ship : {1u, 2u}) {
    detector.Observe(ship, 100);
    detector.Observe(ship, 200);
  }
  for (net::NodeId ship : {3u, 4u, 5u}) detector.Observe(ship, 100);
  for (net::NodeId ship : {6u, 7u, 8u}) detector.Observe(ship, 200);
  EXPECT_TRUE(detector.DetectAndReset().empty());
}

TEST(Pmp, ResonanceMergesOverlappingGroups) {
  ResonanceDetector::Config cfg;
  cfg.min_support = 2;
  cfg.min_jaccard = 0.5;
  ResonanceDetector detector(cfg);
  for (net::NodeId ship : {1u, 2u, 3u}) {
    detector.Observe(ship, 100);
    detector.Observe(ship, 200);
    detector.Observe(ship, 300);
  }
  const auto groups = detector.DetectAndReset();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<FactKey>{100, 200, 300}));
}

TEST(Pmp, ResonanceResetsBetweenWindows) {
  ResonanceDetector detector;
  for (net::NodeId ship : {1u, 2u, 3u}) {
    detector.Observe(ship, 100);
    detector.Observe(ship, 200);
  }
  EXPECT_FALSE(detector.DetectAndReset().empty());
  EXPECT_TRUE(detector.DetectAndReset().empty());  // window cleared
}

// ---- Overlays ----

TEST(Overlay, SpawnBuildsFullMesh) {
  net::Topology topo = net::MakeLine(5);
  OverlayManager manager(topo);
  auto id = manager.Spawn("test", {0, 2, 4});
  ASSERT_TRUE(id.ok());
  const Overlay* overlay = manager.Find(*id);
  ASSERT_NE(overlay, nullptr);
  EXPECT_EQ(overlay->links.size(), 3u);  // 3 choose 2
  // Virtual link 0-4 rides the full physical line.
  for (const auto& link : overlay->links) {
    if (link.a == 0 && link.b == 4) {
      EXPECT_EQ(link.physical_path.size(), 5u);
    }
  }
}

TEST(Overlay, QosBoundFiltersSlowLinks) {
  net::LinkConfig cfg;
  cfg.latency = 10 * sim::kMillisecond;
  net::Topology topo = net::MakeLine(5, cfg);
  OverlayManager manager(topo);
  // 0-4 needs 40 ms; a 25 ms bound kills the long mesh edges but keeps the
  // overlay connected through shorter ones.
  auto id = manager.Spawn("qos", {0, 2, 4}, 25 * sim::kMillisecond);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const Overlay* overlay = manager.Find(*id);
  EXPECT_EQ(overlay->links.size(), 2u);  // 0-2 and 2-4 only
}

TEST(Overlay, ImpossibleQosBoundFails) {
  net::LinkConfig cfg;
  cfg.latency = 10 * sim::kMillisecond;
  net::Topology topo = net::MakeLine(5, cfg);
  OverlayManager manager(topo);
  EXPECT_FALSE(manager.Spawn("impossible", {0, 4}, sim::kMillisecond).ok());
}

TEST(Overlay, NeedsTwoMembers) {
  net::Topology topo = net::MakeLine(3);
  OverlayManager manager(topo);
  EXPECT_FALSE(manager.Spawn("solo", {1}).ok());
}

TEST(Overlay, RemoveWorks) {
  net::Topology topo = net::MakeLine(3);
  OverlayManager manager(topo);
  auto id = manager.Spawn("x", {0, 2});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(manager.Remove(*id).ok());
  EXPECT_EQ(manager.Find(*id), nullptr);
  EXPECT_FALSE(manager.Remove(*id).ok());
}

TEST(Overlay, RefreshRepairsAfterFailure) {
  net::Topology topo = net::MakeRing(6);
  OverlayManager manager(topo);
  auto id = manager.Spawn("ring-overlay", {0, 3});
  ASSERT_TRUE(id.ok());
  const auto original_path = manager.Find(*id)->links[0].physical_path;
  // Break the first hop of the pinned path.
  const auto link = topo.FindLink(original_path[0], original_path[1]);
  ASSERT_TRUE(link.has_value());
  topo.SetLinkUp(*link, false);
  EXPECT_EQ(manager.RefreshPaths(), 1u);
  const auto& repaired = manager.Find(*id)->links[0];
  ASSERT_GE(repaired.physical_path.size(), 2u);
  EXPECT_NE(repaired.physical_path, original_path);
}

TEST(Overlay, StretchIsAtLeastOne) {
  net::Topology topo = net::MakeRing(8);
  OverlayManager manager(topo);
  auto id = manager.Spawn("o", {0, 2, 4});
  ASSERT_TRUE(id.ok());
  EXPECT_GE(manager.AverageStretch(*id), 1.0);
}

}  // namespace
}  // namespace viator::wli
