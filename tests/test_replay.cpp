// Wandering Flight Recorder: decision journal ring semantics, replay
// neutrality (journal-on runs are bit-identical to journal-off), TLV and
// genesis round-trips, time-travel seek verification, metric watchpoints
// and divergence bisection down to the exact injected decision.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/wandering_network.h"
#include "replay/auditor.h"
#include "replay/controller.h"
#include "replay/journal.h"
#include "replay/scenario.h"

namespace viator {
namespace {

replay::ScenarioConfig SmallConfig() {
  replay::ScenarioConfig config;
  config.seed = 0xf11e;
  config.rows = 2;
  config.cols = 2;
  config.steps = 12;
  config.injections_per_step = 2;
  config.pulse_every = 4;
  config.checkpoint_every = 4;
  return config;
}

// ---- Journal ring -----------------------------------------------------------

TEST(DecisionJournal, StreamNames) {
  EXPECT_EQ(replay::StreamName(replay::kStreamNetwork), "network");
  EXPECT_EQ(replay::StreamName(replay::kStreamFabric), "fabric");
  EXPECT_EQ(replay::StreamName(replay::kStreamShipBase + 3), "ship 3");
}

TEST(DecisionJournal, RingBoundsMemoryAndKeepsNewest) {
  replay::DecisionJournal journal({.capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    journal.RecordDraw(replay::kStreamNetwork, 100 + i);
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_records(), 10u);
  EXPECT_EQ(journal.dropped_records(), 6u);
  // Oldest-first iteration over the surviving newest four.
  for (std::size_t i = 0; i < journal.size(); ++i) {
    EXPECT_EQ(journal.at(i).a, 106 + i);
  }
}

TEST(DecisionJournal, RollingDigestCoversDroppedRecords) {
  replay::DecisionJournal small({.capacity = 2});
  replay::DecisionJournal large({.capacity = 64});
  for (std::uint64_t i = 0; i < 8; ++i) {
    small.RecordDraw(0, i);
    large.RecordDraw(0, i);
  }
  // Same decision history, same digest, regardless of ring capacity.
  EXPECT_EQ(small.rolling_digest(), large.rolling_digest());

  replay::DecisionJournal other({.capacity = 2});
  for (std::uint64_t i = 0; i < 8; ++i) {
    other.RecordDraw(0, i == 5 ? 999u : i);
  }
  EXPECT_NE(small.rolling_digest(), other.rolling_digest());
}

TEST(DecisionJournal, TlvRoundTrip) {
  replay::DecisionJournal journal({.capacity = 8});
  for (std::uint64_t i = 0; i < 12; ++i) {
    journal.RecordDraw(replay::kStreamFabric, i * 17);
  }
  journal.RecordDispatch(/*when=*/42, /*seq=*/7);
  journal.RecordNote("marker");

  replay::DecisionJournal restored;
  ASSERT_TRUE(restored.Load(journal.Save()).ok());
  EXPECT_EQ(restored.capacity(), journal.capacity());
  EXPECT_EQ(restored.size(), journal.size());
  EXPECT_EQ(restored.total_records(), journal.total_records());
  EXPECT_EQ(restored.rolling_digest(), journal.rolling_digest());
  for (std::size_t i = 0; i < journal.size(); ++i) {
    EXPECT_TRUE(restored.at(i).SameDecision(journal.at(i)));
    EXPECT_EQ(restored.at(i).digest, journal.at(i).digest);
  }
}

TEST(DecisionJournal, LoadRejectsGarbage) {
  replay::DecisionJournal journal;
  const std::vector<std::byte> garbage(13, std::byte{0xab});
  EXPECT_FALSE(journal.Load(garbage).ok());
}

// ---- Scenario config --------------------------------------------------------

TEST(ScenarioConfig, TlvRoundTrip) {
  replay::ScenarioConfig config = SmallConfig();
  config.perturb_step = 5;
  config.tracing = true;
  config.journal_config.capacity = 123;
  config.hash_every = 2;
  const auto loaded = replay::ScenarioConfig::Load(config.Save());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seed, config.seed);
  EXPECT_EQ(loaded->rows, config.rows);
  EXPECT_EQ(loaded->cols, config.cols);
  EXPECT_EQ(loaded->steps, config.steps);
  EXPECT_EQ(loaded->injections_per_step, config.injections_per_step);
  EXPECT_EQ(loaded->pulse_every, config.pulse_every);
  EXPECT_EQ(loaded->checkpoint_every, config.checkpoint_every);
  EXPECT_EQ(loaded->perturb_step, config.perturb_step);
  EXPECT_EQ(loaded->tracing, config.tracing);
  EXPECT_EQ(loaded->journal, config.journal);
  EXPECT_EQ(loaded->journal_config.capacity, config.journal_config.capacity);
  EXPECT_EQ(loaded->hash_every, config.hash_every);
}

// ---- Replay neutrality ------------------------------------------------------

TEST(ReplayNeutrality, JournalOnMatchesJournalOffBitForBit) {
  replay::ScenarioConfig on = SmallConfig();
  replay::ScenarioConfig off = SmallConfig();
  off.journal = false;
  off.checkpoint_every = 0;

  replay::ReplayWorld world_on(on);
  replay::ReplayWorld world_off(off);
  world_on.RunToStep(on.steps);
  world_off.RunToStep(off.steps);

  // The journaled run made exactly the same decisions: same network state
  // hash, same delivered work, same virtual clock.
  EXPECT_EQ(world_on.StateHash(), world_off.StateHash());
  EXPECT_EQ(world_on.Delivered(), world_off.Delivered());
  EXPECT_EQ(world_on.simulator().now(), world_off.simulator().now());
  EXPECT_GT(world_on.journal().total_records(), 0u);
  EXPECT_EQ(world_off.journal().total_records(), 0u);
}

TEST(ReplayNeutrality, IdenticalRunsProduceIdenticalJournals) {
  replay::ReplayWorld a(SmallConfig());
  replay::ReplayWorld b(SmallConfig());
  a.RunToStep(a.config().steps);
  b.RunToStep(b.config().steps);
  EXPECT_EQ(a.journal().total_records(), b.journal().total_records());
  EXPECT_EQ(a.journal().rolling_digest(), b.journal().rolling_digest());
  ASSERT_EQ(a.journal().window_hashes().size(),
            b.journal().window_hashes().size());
  EXPECT_EQ(a.journal().window_hashes(), b.journal().window_hashes());
}

// ---- Genesis integration ----------------------------------------------------

TEST(ReplayWorld, CheckpointsCaptureOnCadence) {
  replay::ReplayWorld world(SmallConfig());
  world.RunToStep(12);
  // checkpoint_every = 4 over 12 steps → checkpoints at steps 4, 8, 12.
  ASSERT_EQ(world.checkpoints().size(), 3u);
  EXPECT_EQ(world.checkpoints()[0].step, 4u);
  EXPECT_EQ(world.checkpoints()[1].step, 8u);
  EXPECT_EQ(world.checkpoints()[2].step, 12u);
}

TEST(ReplayWorld, RestoredCheckpointResumesJournalAndTimeline) {
  replay::ReplayWorld original(SmallConfig());
  original.RunToStep(12);
  const auto& midpoint = original.checkpoints()[1];  // step 8

  replay::ReplayWorld resumed(SmallConfig(), /*populate=*/false,
                              /*keep_checkpoints=*/false);
  ASSERT_TRUE(resumed.RestoreFromCheckpoint(midpoint).ok());
  EXPECT_EQ(resumed.step(), 8u);
  resumed.RunToStep(12);

  // Re-execution from the checkpoint rejoins the original timeline exactly:
  // same final state hash and same complete decision history.
  EXPECT_EQ(resumed.StateHash(), original.StateHash());
  EXPECT_EQ(resumed.journal().total_records(),
            original.journal().total_records());
  EXPECT_EQ(resumed.journal().rolling_digest(),
            original.journal().rolling_digest());
}

// ---- Time travel ------------------------------------------------------------

TEST(ReplayController, SeekReproducesRecordedStateHash) {
  replay::ReplayController controller(SmallConfig());
  controller.RecordFull();
  for (const std::size_t target : {3u, 8u, 11u}) {
    ASSERT_TRUE(controller.SeekToStep(target).ok()) << "step " << target;
    ASSERT_NE(controller.cursor(), nullptr);
    EXPECT_EQ(controller.cursor()->step(), target);
    EXPECT_TRUE(controller.VerifySeek().ok()) << "step " << target;
    const auto recorded = controller.RecordedWindowHash(target);
    ASSERT_TRUE(recorded.has_value());
    EXPECT_EQ(controller.cursor()->StateHash(), *recorded);
  }
}

TEST(ReplayController, SingleStepAdvancesVirtualTimeMonotonically) {
  replay::ReplayController controller(SmallConfig());
  controller.RecordFull();
  ASSERT_TRUE(controller.SeekToStep(0).ok());
  sim::TimePoint last = 0;
  std::size_t dispatches = 0;
  while (auto when = controller.StepDispatch()) {
    EXPECT_GE(*when, last);
    last = *when;
    ++dispatches;
    if (dispatches >= 64) break;  // plenty to prove monotonicity
  }
  EXPECT_GT(dispatches, 0u);
}

// ---- Watchpoints ------------------------------------------------------------

TEST(Watchpoint, ParsesSpecGrammar) {
  const auto counter = replay::Watchpoint::Parse("counter:wn.morphs>=42");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ(counter->kind, replay::Watchpoint::Kind::kCounter);
  EXPECT_EQ(counter->metric, "wn.morphs");
  EXPECT_EQ(counter->op, replay::Watchpoint::Op::kGe);
  EXPECT_EQ(counter->value, 42.0);

  const auto gauge = replay::Watchpoint::Parse("gauge:wn.load<=0.5");
  ASSERT_TRUE(gauge.ok());
  EXPECT_EQ(gauge->kind, replay::Watchpoint::Kind::kGauge);
  EXPECT_EQ(gauge->op, replay::Watchpoint::Op::kLe);
  EXPECT_EQ(gauge->value, 0.5);

  EXPECT_FALSE(replay::Watchpoint::Parse("nonsense").ok());
  EXPECT_FALSE(replay::Watchpoint::Parse("counter:name").ok());
}

TEST(Watchpoint, FiresAtDeterministicInjectionCount) {
  replay::ReplayController controller(SmallConfig());
  controller.RecordFull();
  ASSERT_TRUE(controller.SeekToStep(0).ok());
  const auto watch = replay::Watchpoint::Parse(
      "counter:wn.shuttles_injected>=5");
  ASSERT_TRUE(watch.ok());
  const auto hit = controller.RunUntilWatch(*watch);
  ASSERT_TRUE(hit.ok());
  // Two injections per step → the fifth lands in step 3.
  EXPECT_EQ(hit->step, 3u);
  EXPECT_GE(hit->observed, 5.0);
}

TEST(Watchpoint, ReportsNotFoundWhenNeverFiring) {
  replay::ReplayController controller(SmallConfig());
  controller.RecordFull();
  ASSERT_TRUE(controller.SeekToStep(0).ok());
  const auto watch = replay::Watchpoint::Parse(
      "counter:wn.shuttles_injected>=1000000");
  ASSERT_TRUE(watch.ok());
  const auto hit = controller.RunUntilWatch(*watch);
  EXPECT_FALSE(hit.ok());
  EXPECT_EQ(hit.status().code(), StatusCode::kNotFound);
}

// ---- Divergence audit -------------------------------------------------------

TEST(DivergenceAuditor, IdenticalRunsCompareClean) {
  replay::ReplayWorld a(SmallConfig());
  replay::ReplayWorld b(SmallConfig());
  a.RunToStep(a.config().steps);
  b.RunToStep(b.config().steps);
  const auto report =
      replay::DivergenceAuditor::Compare(a.journal(), b.journal());
  EXPECT_FALSE(report.diverged);
}

TEST(DivergenceAuditor, CompareFindsFirstDivergentStep) {
  replay::ScenarioConfig perturbed = SmallConfig();
  perturbed.perturb_step = 7;
  replay::ReplayWorld clean(SmallConfig());
  replay::ReplayWorld dirty(perturbed);
  clean.RunToStep(12);
  dirty.RunToStep(12);
  const auto report =
      replay::DivergenceAuditor::Compare(clean.journal(), dirty.journal());
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_step, 7u);
}

TEST(DivergenceAuditor, BisectPinpointsInjectedDraw) {
  replay::ScenarioConfig perturbed = SmallConfig();
  perturbed.perturb_step = 7;
  replay::ReplayController clean(SmallConfig());
  replay::ReplayController dirty(perturbed);
  clean.RecordFull();
  dirty.RecordFull();

  const auto report = replay::DivergenceAuditor::Bisect(clean, dirty);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->diverged);
  EXPECT_EQ(report->first_divergent_step, 7u);
  // Re-executing step 7 on both sides pins the exact first divergent
  // decision. (The burned draw consumes the same raw value the clean run
  // spends on its first injection, so the first *observable* decision
  // difference is downstream of it — still within step 7.)
  ASSERT_TRUE(report->refined);
  EXPECT_FALSE(report->owner.empty());
  EXPECT_FALSE(report->summary.empty());
  EXPECT_NE(report->summary.find("step 7"), std::string::npos);
}

TEST(DivergenceAuditor, CompareSurvivesRingWrap) {
  replay::ScenarioConfig tiny_ring = SmallConfig();
  tiny_ring.journal_config.capacity = 8;  // far smaller than one step
  replay::ScenarioConfig tiny_dirty = tiny_ring;
  tiny_dirty.perturb_step = 7;
  replay::ReplayWorld clean(tiny_ring);
  replay::ReplayWorld dirty(tiny_dirty);
  clean.RunToStep(12);
  dirty.RunToStep(12);
  // The ring wrapped long ago, but the unbounded window hashes still locate
  // the divergent step.
  const auto report =
      replay::DivergenceAuditor::Compare(clean.journal(), dirty.journal());
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_step, 7u);
}

}  // namespace
}  // namespace viator
