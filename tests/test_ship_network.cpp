// Integration tests for Ship + WanderingNetwork: shuttle transport, mobile
// code execution, demand code loading, jets, capsule authorization, genetic
// blueprints, migration and the metamorphosis pulse.
#include <gtest/gtest.h>

#include "core/ship.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "vm/assembler.h"

namespace viator::wli {
namespace {

struct WnFixture : ::testing::Test {
  sim::Simulator simulator;
  net::Topology topology = net::MakeLine(4);
  WnConfig config;
  std::unique_ptr<WanderingNetwork> wn;

  void Build() {
    wn = std::make_unique<WanderingNetwork>(simulator, topology, config,
                                            /*seed=*/1234);
    wn->PopulateAllNodes();
  }
};

TEST_F(WnFixture, DataShuttleCrossesMultipleHops) {
  Build();
  int delivered = 0;
  wn->ship(3)->SetDeliverySink(
      [&](Ship&, const Shuttle& s) { delivered += s.payload.empty() ? 0 : 1; });
  ASSERT_TRUE(wn->Inject(Shuttle::Data(0, 3, {7, 8, 9}, 1)).ok());
  simulator.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(wn->ship(1)->shuttles_forwarded(), 1u);
  EXPECT_EQ(wn->ship(2)->shuttles_forwarded(), 1u);
  EXPECT_EQ(wn->ship(3)->shuttles_consumed(), 1u);
}

TEST_F(WnFixture, TtlExpiryDropsLoopingShuttles) {
  Build();
  Shuttle s = Shuttle::Data(0, 3, {1}, 1);
  s.header.ttl = 1;  // expires at node 1
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->ship(3)->shuttles_consumed(), 0u);
  EXPECT_EQ(wn->stats().CounterValue("wn.ttl_expired"), 1u);
}

TEST_F(WnFixture, UnroutableShuttleCounted) {
  Build();
  topology.SetLinkUp(0, false);  // isolate node 0
  EXPECT_FALSE(wn->Inject(Shuttle::Data(0, 3, {1}, 1)).ok());
  EXPECT_EQ(wn->stats().CounterValue("wn.unroutable"), 1u);
}

TEST_F(WnFixture, ShuttleCodeExecutesOnArrival) {
  Build();
  // The program reads payload[0], doubles it and stores it as a fact.
  auto program = vm::Assemble("doubler", R"(
  push 0
  sys payload
  dup
  add
  store 0
  push 777      ; fact key
  load 0        ; value
  push 100      ; weight (percent)
  sys put_fact
  halt
)");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(wn->PublishProgram(*program, 0).ok());

  Shuttle s = Shuttle::Data(0, 3, {21}, 1);
  s.code_digest = program->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  // Demand loading fetched the code from origin 0, then executed at 3.
  EXPECT_EQ(wn->ship(3)->facts().Get(777), std::optional<std::int64_t>(42));
  EXPECT_EQ(wn->ship(3)->code_executions(), 1u);
  EXPECT_EQ(wn->ship(3)->code_misses(), 1u);
}

TEST_F(WnFixture, SecondShuttleHitsWarmCodeCache) {
  Build();
  auto program = vm::Assemble("noop", "push 1\nsys emit\nhalt\n");
  ASSERT_TRUE(wn->PublishProgram(*program, 0).ok());
  for (int i = 0; i < 2; ++i) {
    Shuttle s = Shuttle::Data(0, 3, {1}, 1);
    s.code_digest = program->digest();
    ASSERT_TRUE(wn->Inject(std::move(s)).ok());
    simulator.RunAll();
  }
  EXPECT_EQ(wn->ship(3)->code_misses(), 1u);  // only the first was cold
  EXPECT_EQ(wn->ship(3)->code_executions(), 2u);
}

TEST_F(WnFixture, SyscallSendValueEmitsShuttle) {
  Build();
  auto program = vm::Assemble("forwarder", R"(
  push 0        ; dst node
  push 5        ; tag/flow
  push 0
  sys payload   ; value = payload[0]
  sys send_value
  halt
)");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(wn->PublishProgram(*program, 2).ok());
  std::int64_t received = -1;
  wn->ship(0)->SetDeliverySink([&](Ship&, const Shuttle& s) {
    if (!s.payload.empty()) received = s.payload[0];
  });
  Shuttle s = Shuttle::Data(1, 2, {99}, 1);
  s.code_digest = program->digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(received, 99);
}

TEST_F(WnFixture, FaultingCodeHurtsSenderReputation) {
  Build();
  // A verified program whose runtime fuel never suffices: infinite loop is
  // fine (verifier allows it; fuel stops it) — out-of-fuel is NOT a fault.
  // A fault needs a failing syscall: replicate outside a jet returns 0,
  // so use an invalid store via syscall failure path instead: erase_fact is
  // harmless... Use a program that requests role 99 (invalid) -> returns 0,
  // no fault either. The reliable fault: syscall with ship-level failure is
  // only unknown-syscall, which the verifier rejects. So craft a fault via
  // stack underflow in a hand-built (unverified) program installed through
  // the cache directly.
  std::vector<vm::Instruction> code = {{vm::Opcode::kAdd, 0},
                                       {vm::Opcode::kHalt, 0}};
  vm::Program bad("bad", code);
  ASSERT_TRUE(wn->ship(3)->os().code_cache().Put(bad).ok());
  Shuttle s = Shuttle::Data(0, 3, {1}, 1);
  s.code_digest = bad.digest();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->stats().CounterValue("wn.exec_faults"), 1u);
  EXPECT_LT(wn->reputation().ScoreOf(0), 0.5);
}

TEST_F(WnFixture, CodeShuttleInstallsProgram) {
  Build();
  auto program = vm::Assemble("installed", "push 1\nhalt\n");
  Shuttle s;
  s.header.source = 0;
  s.header.destination = 2;
  s.header.kind = ShuttleKind::kCode;
  s.code_image = program->Serialize();
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_TRUE(wn->ship(2)->os().code_cache().Contains(program->digest()));
  EXPECT_EQ(wn->stats().CounterValue("wn.code_installed"), 1u);
}

TEST_F(WnFixture, AuthorizationRejectsUnsignedCode) {
  config.auth_key = 0xdeadbeef;
  Build();
  auto program = vm::Assemble("unsigned", "push 1\nhalt\n");
  Shuttle s;
  s.header.source = 0;
  s.header.destination = 2;
  s.header.kind = ShuttleKind::kCode;
  s.code_image = program->Serialize();
  // No auth tag set.
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_FALSE(wn->ship(2)->os().code_cache().Contains(program->digest()));
  EXPECT_EQ(wn->stats().CounterValue("wn.code_unauthorized"), 1u);
}

TEST_F(WnFixture, AuthorizationAcceptsSignedCode) {
  config.auth_key = 0xdeadbeef;
  Build();
  auto program = vm::Assemble("signed", "push 1\nhalt\n");
  Shuttle s;
  s.header.source = 0;
  s.header.destination = 2;
  s.header.kind = ShuttleKind::kCode;
  s.code_image = program->Serialize();
  s.auth_tag = KeyedTag(0xdeadbeef, s.code_image);
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_TRUE(wn->ship(2)->os().code_cache().Contains(program->digest()));
}

TEST_F(WnFixture, KnowledgeShuttleAbsorbsFacts) {
  Build();
  KnowledgeQuantum kq;
  kq.function.id = 5;
  kq.function.name = "kq-fn";
  kq.function.role = node::FirstLevelRole::kFusion;
  kq.facts = {{111, 1, 2.0}, {222, 2, 3.0}};
  Shuttle s;
  s.header.source = 0;
  s.header.destination = 3;
  s.header.kind = ShuttleKind::kKnowledge;
  s.genome = EncodeKnowledgeQuantum(kq);
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->ship(3)->facts().Get(111), std::optional<std::int64_t>(1));
  EXPECT_EQ(wn->ship(3)->facts().Get(222), std::optional<std::int64_t>(2));
  // No payload[0]==1, so the function itself was not installed.
  EXPECT_EQ(wn->ship(3)->functions().Find(5), nullptr);
}

TEST_F(WnFixture, KnowledgeShuttleCanInstallFunction) {
  Build();
  KnowledgeQuantum kq;
  kq.function.id = 6;
  kq.function.name = "installed-fn";
  kq.function.role = node::FirstLevelRole::kFission;
  Shuttle s;
  s.header.source = 0;
  s.header.destination = 2;
  s.header.kind = ShuttleKind::kKnowledge;
  s.genome = EncodeKnowledgeQuantum(kq);
  s.payload = {1};  // install request
  ASSERT_TRUE(wn->Inject(std::move(s)).ok());
  simulator.RunAll();
  EXPECT_NE(wn->ship(2)->functions().Find(6), nullptr);
  EXPECT_EQ(wn->placements().at(6), 2u);
  EXPECT_EQ(wn->ship(2)->os().current_role(), node::FirstLevelRole::kFission);
}

TEST_F(WnFixture, JetReplicatesWithinBudget) {
  Build();
  // Jet program: replicate to every neighbor of the current node.
  auto program = vm::Assemble("jet", R"(
  sys neighbor_count
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  load 0
  sys neighbor
  sys replicate
  pop
  jmp loop
done:
  halt
)");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(wn->PublishProgram(*program, 1).ok());

  Shuttle jet;
  jet.header.source = 0;
  jet.header.destination = 1;
  jet.header.kind = ShuttleKind::kJet;
  jet.code_digest = program->digest();
  jet.code_image = program->Serialize();
  jet.replication_budget = 2;
  ASSERT_TRUE(wn->Inject(std::move(jet)).ok());
  simulator.RunAll();
  EXPECT_GT(wn->stats().CounterValue("wn.jet_replications"), 0u);
  // Budget bounds the cascade: every replica has budget-1.
  EXPECT_LE(wn->stats().CounterValue("wn.jet_replications"), 16u);
}

TEST_F(WnFixture, JetBudgetCapClamps) {
  config.jet_budget_cap = 0;  // security class forbids replication
  Build();
  auto program = vm::Assemble("jet", R"(
  push 2
  sys replicate
  sys emit
  halt
)");
  ASSERT_TRUE(wn->PublishProgram(*program, 1).ok());
  Shuttle jet;
  jet.header.source = 0;
  jet.header.destination = 1;
  jet.header.kind = ShuttleKind::kJet;
  jet.code_digest = program->digest();
  jet.code_image = program->Serialize();
  jet.replication_budget = 100;  // attempted runaway
  ASSERT_TRUE(wn->Inject(std::move(jet)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->stats().CounterValue("wn.jet_replications"), 0u);
  // The jet ran but replicate returned 0 (clamped budget).
  EXPECT_EQ(wn->ship(1)->last_emissions(), (std::vector<std::int64_t>{0}));
}

TEST_F(WnFixture, GenerationOneRefusesJets) {
  config.generation = 1;
  Build();
  Shuttle jet;
  jet.header.source = 0;
  jet.header.destination = 1;
  jet.header.kind = ShuttleKind::kJet;
  jet.replication_budget = 4;
  ASSERT_TRUE(wn->Inject(std::move(jet)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->stats().CounterValue("wn.jet_refused"), 1u);
}

TEST_F(WnFixture, BlueprintRoundTripsThroughShip) {
  Build();
  Ship* source = wn->ship(1);
  (void)source->SwitchRole(node::FirstLevelRole::kFusion,
                           node::SwitchMechanism::kResidentSoftware);
  source->os().set_next_step(node::FirstLevelRole::kCaching);
  source->facts().Touch(42, 420, 5.0, simulator.now());
  const auto blueprint = source->ToBlueprint();
  EXPECT_EQ(blueprint.role, node::FirstLevelRole::kFusion);
  EXPECT_EQ(blueprint.next_step, node::FirstLevelRole::kCaching);
  ASSERT_FALSE(blueprint.facts.empty());

  Ship* target = wn->ship(3);
  ASSERT_TRUE(target->ApplyBlueprint(blueprint).ok());
  EXPECT_EQ(target->os().current_role(), node::FirstLevelRole::kFusion);
  EXPECT_EQ(target->facts().Get(42), std::optional<std::int64_t>(420));
}

TEST_F(WnFixture, DishonestShipAdvertisesWrongDigest) {
  Build();
  Ship* honest = wn->ship(0);
  Ship* liar = wn->ship(1);
  liar->set_honest(false);
  const auto honest_desc = honest->DescribeSelf();
  // Audit: recompute the genome digest and compare with the advertisement.
  const auto actual =
      HashBytes(EncodeBlueprint(honest->ToBlueprint()));
  EXPECT_EQ(honest_desc.descriptor_digest, actual);
  const auto liar_desc = liar->DescribeSelf();
  const auto liar_actual = HashBytes(EncodeBlueprint(liar->ToBlueprint()));
  EXPECT_NE(liar_desc.descriptor_digest, liar_actual);
}

TEST_F(WnFixture, ExcludedShipsLoseService) {
  Build();
  for (int i = 0; i < 30; ++i) wn->reputation().ReportInteraction(0, false);
  ASSERT_TRUE(wn->reputation().IsExcluded(0));
  EXPECT_EQ(wn->Inject(Shuttle::Data(0, 3, {1}, 1)).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(wn->stats().CounterValue("wn.excluded_dropped"), 1u);
}

TEST_F(WnFixture, MigrateFunctionMovesViaShuttle) {
  Build();
  NetFunction fn;
  fn.name = "movable";
  fn.role = node::FirstLevelRole::kFusion;
  const FunctionId id = wn->DeployFunction(0, fn);
  EXPECT_EQ(wn->placements().at(id), 0u);
  ASSERT_TRUE(wn->MigrateFunction(id, 3).ok());
  EXPECT_EQ(wn->ship(0)->functions().Find(id), nullptr);  // gone at source
  simulator.RunAll();  // carrier shuttle lands
  EXPECT_NE(wn->ship(3)->functions().Find(id), nullptr);
  EXPECT_EQ(wn->placements().at(id), 3u);
  EXPECT_EQ(wn->ship(3)->os().current_role(), node::FirstLevelRole::kFusion);
  EXPECT_EQ(wn->migrations_executed(), 1u);
  EXPECT_EQ(wn->stats().CounterValue("wn.migrations_landed"), 1u);
}

TEST_F(WnFixture, PulseMigratesTowardDemand) {
  Build();
  NetFunction fn;
  fn.name = "hot-service";
  fn.role = node::FirstLevelRole::kFusion;
  const FunctionId id = wn->DeployFunction(0, fn);
  // Create a demand hotspot at node 3.
  for (int i = 0; i < 20; ++i) {
    wn->demand().Record(3, node::FirstLevelRole::kFusion, 1.0);
  }
  wn->Pulse();
  simulator.RunAll();
  EXPECT_EQ(wn->placements().at(id), 3u);
}

TEST_F(WnFixture, PulseGeneration2DoesNotMigrate) {
  config.generation = 2;
  Build();
  NetFunction fn;
  fn.role = node::FirstLevelRole::kFusion;
  const FunctionId id = wn->DeployFunction(0, fn);
  for (int i = 0; i < 20; ++i) {
    wn->demand().Record(3, node::FirstLevelRole::kFusion, 1.0);
  }
  wn->Pulse();
  simulator.RunAll();
  EXPECT_EQ(wn->placements().at(id), 0u);  // 2G: no self-distribution
}

TEST_F(WnFixture, PulseExpiresFactlessFunctions) {
  Build();
  NetFunction fn;
  fn.name = "fact-bound";
  fn.role = node::FirstLevelRole::kCaching;
  fn.fact_keys = {999};
  const FunctionId id = wn->DeployFunction(2, fn);
  // The fact never existed, so the first pulse kills the function and its
  // placement.
  wn->Pulse();
  EXPECT_EQ(wn->ship(2)->functions().Find(id), nullptr);
  EXPECT_EQ(wn->placements().count(id), 0u);
  EXPECT_GT(wn->stats().CounterValue("wn.functions_expired"), 0u);
}

TEST_F(WnFixture, ResonanceEmergesFunctions) {
  config.resonance.min_support = 3;
  config.resonance.min_jaccard = 0.5;
  Build();
  // Plant strongly co-occurring facts on three ships, refreshed enough to
  // survive the pulse sweep.
  for (net::NodeId n : {0u, 1u, 2u}) {
    for (int i = 0; i < 10; ++i) {
      wn->ship(n)->facts().Touch(500, 1, 5.0, simulator.now());
      wn->ship(n)->facts().Touch(600, 2, 5.0, simulator.now());
    }
  }
  wn->Pulse();
  EXPECT_GE(wn->functions_emerged(), 1u);
  EXPECT_EQ(wn->stats().CounterValue("wn.functions_emerged"),
            wn->functions_emerged());
}

TEST_F(WnFixture, PulseSpawnsOverlaysFromClassActivity) {
  config.vertical.spawn_threshold = 2.0;
  config.vertical.min_members = 2;
  Build();
  // Run shuttle code on two ships to create class activity.
  auto program = vm::Assemble("work", "push 1\nsys emit\nhalt\n");
  ASSERT_TRUE(wn->PublishProgram(*program, 0).ok());
  for (net::NodeId dst : {1u, 2u}) {
    for (int i = 0; i < 3; ++i) {
      Shuttle s = Shuttle::Data(0, dst, {1}, 1);
      s.code_digest = program->digest();
      ASSERT_TRUE(wn->Inject(std::move(s)).ok());
    }
  }
  simulator.RunAll();
  wn->Pulse();
  EXPECT_GT(wn->overlays().spawned_total(), 0u);
  EXPECT_GT(wn->stats().CounterValue("wn.overlays_spawned"), 0u);
}

TEST_F(WnFixture, RoleDiversityReflectsCensus) {
  Build();
  EXPECT_DOUBLE_EQ(wn->RoleDiversity(), 0.0);  // all ships same default role
  (void)wn->ship(0)->SwitchRole(node::FirstLevelRole::kFusion,
                                node::SwitchMechanism::kResidentSoftware);
  (void)wn->ship(1)->SwitchRole(node::FirstLevelRole::kFission,
                                node::SwitchMechanism::kResidentSoftware);
  EXPECT_GT(wn->RoleDiversity(), 1.0);
  const auto census = wn->RoleCensus();
  EXPECT_EQ(census.at(node::FirstLevelRole::kFusion), 1u);
  EXPECT_EQ(census.at(node::FirstLevelRole::kCaching), 2u);
}

TEST_F(WnFixture, StartPulseRunsPeriodically) {
  config.pulse_interval = 100 * sim::kMillisecond;
  Build();
  wn->StartPulse(sim::kSecond);
  simulator.RunUntil(sim::kSecond);
  EXPECT_GE(wn->pulses(), 9u);
  EXPECT_LE(wn->pulses(), 10u);
}

TEST_F(WnFixture, MorphingAtDockCountsAndRejects) {
  Build();
  wn->morphing().SetRequiredInterface(node::ShipClass::kServer, 7);
  // No adapter 0->7 registered: every data shuttle is rejected at dock.
  ASSERT_TRUE(wn->Inject(Shuttle::Data(0, 1, {1}, 1)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->stats().CounterValue("wn.dock_rejected"), 1u);
  // Register the adapter: now the dock succeeds and counts a morph.
  wn->morphing().AddAdapter(0, 7, 8, sim::kMicrosecond);
  ASSERT_TRUE(wn->Inject(Shuttle::Data(0, 1, {1}, 1)).ok());
  simulator.RunAll();
  EXPECT_EQ(wn->stats().CounterValue("wn.morphs"), 1u);
}

TEST_F(WnFixture, DeterministicAcrossRuns) {
  // Two identically seeded networks produce identical outcomes.
  auto run = [](std::uint64_t seed) {
    sim::Simulator simulator_local;
    net::Topology topo = net::MakeLine(4);
    WnConfig cfg;
    WanderingNetwork wn_local(simulator_local, topo, cfg, seed);
    wn_local.PopulateAllNodes();
    for (int i = 0; i < 10; ++i) {
      (void)wn_local.Inject(Shuttle::Data(0, 3, {i}, i));
    }
    simulator_local.RunAll();
    return std::make_pair(wn_local.fabric().bytes_sent(),
                          wn_local.ship(3)->shuttles_consumed());
  };
  EXPECT_EQ(run(42), run(42));
}

// ---- Shuttle pool ----------------------------------------------------------

TEST(ShuttlePool, RecyclesShellsAndResetsState) {
  ShuttlePool pool(4);
  Shuttle s = pool.Acquire();
  s.header.source = 3;
  s.header.ttl = 1;
  s.code_digest = 77;
  s.payload = {1, 2, 3};
  s.genome.resize(64);
  s.replication_budget = 9;
  s.transit_destination = 5;
  const std::int64_t* buffer = s.payload.data();
  pool.Release(std::move(s));
  EXPECT_EQ(pool.pooled(), 1u);

  Shuttle r = pool.Acquire();
  // Same capacity, pristine contents: indistinguishable from a fresh one.
  EXPECT_EQ(r.payload.data(), buffer);
  EXPECT_EQ(r.header.source, net::kInvalidNode);
  EXPECT_EQ(r.header.ttl, Shuttle{}.header.ttl);
  EXPECT_EQ(r.code_digest, 0u);
  EXPECT_TRUE(r.payload.empty());
  EXPECT_TRUE(r.genome.empty());
  EXPECT_EQ(r.replication_budget, 0u);
  EXPECT_FALSE(r.in_transit());
  EXPECT_EQ(pool.reused(), 1u);
}

TEST(ShuttlePool, CapBoundsRetention) {
  ShuttlePool pool(2);
  for (int i = 0; i < 5; ++i) pool.Release(Shuttle{});
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_EQ(pool.released(), 5u);
}

TEST(ShuttlePool, AcquireDataMatchesShuttleData) {
  ShuttlePool pool;
  const std::int64_t words[] = {4, 5, 6};
  Shuttle pooled = pool.AcquireData(1, 2, words, 99);
  Shuttle direct = Shuttle::Data(1, 2, {4, 5, 6}, 99);
  EXPECT_EQ(pooled.header.source, direct.header.source);
  EXPECT_EQ(pooled.header.destination, direct.header.destination);
  EXPECT_EQ(pooled.header.flow_id, direct.header.flow_id);
  EXPECT_EQ(pooled.header.kind, direct.header.kind);
  EXPECT_EQ(pooled.payload, direct.payload);
  EXPECT_EQ(pooled.WireSize(), direct.WireSize());
}

TEST_F(WnFixture, ConsumedShuttlesReturnToThePool) {
  // End-to-end: inject traffic, let ships consume it, and watch the
  // network's pool fill with recycled shells (steady-state allocation-free
  // sends are what the pool exists for).
  Build();
  for (int i = 0; i < 8; ++i) {
    (void)wn->Inject(Shuttle::Data(0, 3, {i}, 7));
    simulator.RunAll();
  }
  EXPECT_GT(wn->shuttle_pool().released(), 0u);
  EXPECT_GT(wn->shuttle_pool().pooled(), 0u);
  // And a pooled re-send reuses a shell rather than allocating.
  const std::uint64_t reused_before = wn->shuttle_pool().reused();
  const std::int64_t word[] = {1};
  (void)wn->Inject(wn->shuttle_pool().AcquireData(0, 3, word, 8));
  simulator.RunAll();
  EXPECT_GT(wn->shuttle_pool().reused(), reused_before);
}

}  // namespace
}  // namespace viator::wli
