// Tests for the discrete-event kernel, statistics and the replica runner.
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace viator::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator s;
  TimePoint fired_at = 0;
  s.ScheduleAt(100, [&] { fired_at = s.now(); });
  s.RunAll();
  EXPECT_EQ(fired_at, 100u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(50, [&] { order.push_back(1); });
  s.ScheduleAt(50, [&] { order.push_back(2); });
  s.ScheduleAt(50, [&] { order.push_back(3); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, OrdersByTime) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(300, [&] { order.push_back(3); });
  s.ScheduleAt(100, [&] { order.push_back(1); });
  s.ScheduleAt(200, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  TimePoint fired_at = 0;
  s.ScheduleAt(100, [&] {
    s.ScheduleAfter(50, [&] { fired_at = s.now(); });
  });
  s.RunAll();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  TimePoint fired_at = 1;
  s.ScheduleAt(100, [&] {
    s.ScheduleAt(10, [&] { fired_at = s.now(); });  // in the past
  });
  s.RunAll();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Simulator, CancelSuppressesCallback) {
  Simulator s;
  bool fired = false;
  auto handle = s.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  int count = 0;
  auto handle = s.ScheduleAt(10, [&] { ++count; });
  s.RunAll();
  handle.Cancel();
  s.RunAll();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(20, [&] { ++fired; });
  s.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20u);
  s.RunAll();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.RunUntil(500);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator s;
  EXPECT_FALSE(s.Step());
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.ScheduleAfter(1, chain);
  };
  s.ScheduleAt(0, chain);
  s.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99u);
}

TEST(Simulator, PendingEventsCountsLiveOnly) {
  Simulator s;
  auto h1 = s.ScheduleAt(10, [] {});
  s.ScheduleAt(20, [] {});
  EXPECT_EQ(s.PendingEvents(), 2u);
  h1.Cancel();
  EXPECT_EQ(s.PendingEvents(), 1u);
}

// ---- Stats ----

TEST(Stats, CounterAccumulates) {
  Counter c;
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramMoments) {
  Histogram h;
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_NEAR(h.stddev(), 2.582, 0.01);
}

TEST(Stats, HistogramEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Stats, HistogramQuantilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const double p25 = h.Quantile(0.25);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_NEAR(p50, 500.0, 200.0);  // log buckets: coarse but sane
  EXPECT_LE(p99, 1000.0);
}

TEST(Stats, HistogramNegativeClampsToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Stats, TimeSeriesMean) {
  TimeSeries ts;
  ts.Record(0, 1.0);
  ts.Record(1, 3.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 2.0);
  EXPECT_EQ(ts.samples().size(), 2u);
}

TEST(Stats, RegistryFindsByName) {
  StatsRegistry reg;
  reg.GetCounter("a").Add(3);
  EXPECT_EQ(reg.CounterValue("a"), 3u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  reg.GetHistogram("h").Record(1.0);
  EXPECT_NE(reg.FindHistogram("h"), nullptr);
}

TEST(Stats, SummarizeComputesMeanStddev) {
  const auto ms = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_NEAR(ms.stddev, 1.29, 0.01);
  const auto empty = Summarize({});
  EXPECT_EQ(empty.mean, 0.0);
}

// ---- Trace ----

TEST(Trace, RecordsAndFilters) {
  TraceSink sink(16);
  sink.Log(0, TraceLevel::kInfo, "net", "link up");
  sink.Log(1, TraceLevel::kError, "net", "link down");
  sink.Log(2, TraceLevel::kInfo, "vm", "ran program");
  EXPECT_EQ(sink.entries().size(), 3u);
  EXPECT_EQ(sink.CountContaining("link"), 2u);
  EXPECT_EQ(sink.ForComponent("vm").size(), 1u);
}

TEST(Trace, CapacityEvictsOldest) {
  TraceSink sink(2);
  sink.Log(0, TraceLevel::kInfo, "a", "first");
  sink.Log(1, TraceLevel::kInfo, "a", "second");
  sink.Log(2, TraceLevel::kInfo, "a", "third");
  ASSERT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.entries().front().message, "second");
}

TEST(Trace, MinLevelSuppresses) {
  TraceSink sink(16);
  sink.set_min_level(TraceLevel::kWarn);
  sink.Log(0, TraceLevel::kDebug, "a", "quiet");
  sink.Log(0, TraceLevel::kError, "a", "loud");
  EXPECT_EQ(sink.entries().size(), 1u);
}

// ---- Replica runner ----

TEST(Replica, AggregatesAcrossReplicas) {
  const auto result = RunReplicas(
      [](std::size_t index, std::uint64_t) {
        return ReplicaMetrics{{"value", static_cast<double>(index)}};
      },
      5, 123, 2);
  ASSERT_EQ(result.count("value"), 1u);
  const auto& agg = result.at("value");
  EXPECT_EQ(agg.samples, 5u);
  EXPECT_DOUBLE_EQ(agg.mean, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(agg.min, 0.0);
  EXPECT_DOUBLE_EQ(agg.max, 4.0);
}

TEST(Replica, SeedsAreDeterministicAndDistinct) {
  std::vector<std::uint64_t> seeds_a(4), seeds_b(4);
  auto run = [](std::vector<std::uint64_t>& out) {
    (void)RunReplicas(
        [&out](std::size_t index, std::uint64_t seed) {
          out[index] = seed;
          return ReplicaMetrics{};
        },
        4, 99, 1);
  };
  run(seeds_a);
  run(seeds_b);
  EXPECT_EQ(seeds_a, seeds_b);
  EXPECT_NE(seeds_a[0], seeds_a[1]);
}

TEST(Replica, ParallelMatchesSerial) {
  auto fn = [](std::size_t index, std::uint64_t seed) {
    viator::Rng rng(seed);
    double acc = 0;
    for (int i = 0; i < 100; ++i) acc += rng.NextDouble();
    return ReplicaMetrics{{"acc", acc + static_cast<double>(index)}};
  };
  const auto serial = RunReplicas(fn, 8, 7, 1);
  const auto parallel = RunReplicas(fn, 8, 7, 8);
  EXPECT_DOUBLE_EQ(serial.at("acc").mean, parallel.at("acc").mean);
  EXPECT_DOUBLE_EQ(serial.at("acc").stddev, parallel.at("acc").stddev);
}

TEST(Replica, ZeroReplicasYieldsEmpty) {
  const auto result = RunReplicas(
      [](std::size_t, std::uint64_t) { return ReplicaMetrics{{"x", 1.0}}; },
      0, 1, 1);
  EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace viator::sim
