// Tests for the discrete-event kernel, statistics and the replica runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace viator::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator s;
  TimePoint fired_at = 0;
  s.ScheduleAt(100, [&] { fired_at = s.now(); });
  s.RunAll();
  EXPECT_EQ(fired_at, 100u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, FifoAtEqualTimes) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(50, [&] { order.push_back(1); });
  s.ScheduleAt(50, [&] { order.push_back(2); });
  s.ScheduleAt(50, [&] { order.push_back(3); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeOrderSurvivesCancellationChurn) {
  // The tie-break key is the stable schedule ordinal, so heavy interleaved
  // cancellation (heap churn, tombstone cleanup) must not reorder surviving
  // same-time events.
  Simulator s;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(s.ScheduleAt(50, [&order, i] { order.push_back(-i); }));
    s.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  for (EventHandle& handle : doomed) handle.Cancel();
  s.RunAll();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RestoreClockRestoresScheduleOrdinal) {
  // Snapshot scenario: the capturing simulator assigned ordinals 0..2; the
  // restored one must continue the counter, not restart it, so later
  // same-time ties (e.g. against merged shard-boundary injections) break
  // exactly as in the uninterrupted run.
  Simulator original;
  for (int i = 0; i < 3; ++i) original.ScheduleAt(10 * (i + 1), [] {});
  original.RunAll();
  EXPECT_EQ(original.schedule_ordinal(), 3u);

  Simulator restored;
  ASSERT_TRUE(restored
                  .RestoreClock(original.now(), original.dispatched(),
                                original.schedule_ordinal())
                  .ok());
  EXPECT_EQ(restored.schedule_ordinal(), 3u);
  EXPECT_EQ(restored.now(), original.now());

  // Moving the ordinal backwards is corruption, not restoration.
  Simulator fresh;
  (void)fresh.RestoreClock(5, 1, 4);
  const Status backwards = fresh.RestoreClock(6, 1, 2);
  EXPECT_EQ(backwards.code(), StatusCode::kInvalidArgument);

  // The sentinel default leaves the counter alone (pre-ordinal snapshots).
  Simulator legacy;
  legacy.ScheduleAt(1, [] {});
  legacy.RunAll();
  const std::uint64_t before = legacy.schedule_ordinal();
  ASSERT_TRUE(legacy.RestoreClock(100, 5).ok());
  EXPECT_EQ(legacy.schedule_ordinal(), before);
}

TEST(Simulator, OrdersByTime) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(300, [&] { order.push_back(3); });
  s.ScheduleAt(100, [&] { order.push_back(1); });
  s.ScheduleAt(200, [&] { order.push_back(2); });
  s.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator s;
  TimePoint fired_at = 0;
  s.ScheduleAt(100, [&] {
    s.ScheduleAfter(50, [&] { fired_at = s.now(); });
  });
  s.RunAll();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  TimePoint fired_at = 1;
  s.ScheduleAt(100, [&] {
    s.ScheduleAt(10, [&] { fired_at = s.now(); });  // in the past
  });
  s.RunAll();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Simulator, ClampedEventsAreCountedNotSilent) {
  Simulator s;
  EXPECT_EQ(s.clamped_events(), 0u);
  s.ScheduleAt(100, [&] {
    s.ScheduleAt(10, [] {});  // in the past → clamped to now
    s.ScheduleAt(100, [] {}); // at now → not a clamp
    s.ScheduleAt(5, [] {});   // second clamp
  });
  s.RunAll();
  EXPECT_EQ(s.clamped_events(), 2u);
}

TEST(Simulator, ClampCounterBindFoldsPriorClamps) {
  Simulator s;
  s.ScheduleAt(100, [&] { s.ScheduleAt(10, [] {}); });
  s.RunAll();
  EXPECT_EQ(s.clamped_events(), 1u);

  // Binding after the fact folds the already-counted clamps into the
  // registry counter, then later clamps flow through it live.
  StatsRegistry stats;
  Counter& counter = stats.GetCounter("sim.clamped_events");
  s.BindClampCounter(&counter);
  EXPECT_EQ(counter.value(), 1u);

  s.ScheduleAt(s.now() + 10, [&] { s.ScheduleAt(1, [] {}); });
  s.RunAll();
  EXPECT_EQ(s.clamped_events(), 2u);
  EXPECT_EQ(counter.value(), 2u);
}

TEST(Simulator, CancelSuppressesCallback) {
  Simulator s;
  bool fired = false;
  auto handle = s.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  s.RunAll();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  int count = 0;
  auto handle = s.ScheduleAt(10, [&] { ++count; });
  s.RunAll();
  handle.Cancel();
  s.RunAll();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(20, [&] { ++fired; });
  s.ScheduleAt(30, [&] { ++fired; });
  EXPECT_EQ(s.RunUntil(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20u);
  s.RunAll();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.RunUntil(500);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator s;
  EXPECT_FALSE(s.Step());
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.ScheduleAfter(1, chain);
  };
  s.ScheduleAt(0, chain);
  s.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99u);
}

TEST(Simulator, PendingEventsCountsLiveOnly) {
  Simulator s;
  auto h1 = s.ScheduleAt(10, [] {});
  s.ScheduleAt(20, [] {});
  EXPECT_EQ(s.PendingEvents(), 2u);
  h1.Cancel();
  EXPECT_EQ(s.PendingEvents(), 1u);
}

// ---- Stats ----

TEST(Stats, CounterAccumulates) {
  Counter c;
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramMoments) {
  Histogram h;
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_NEAR(h.stddev(), 2.582, 0.01);
}

TEST(Stats, HistogramEmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(Stats, HistogramQuantilesAreMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  const double p25 = h.Quantile(0.25);
  const double p50 = h.Quantile(0.50);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_NEAR(p50, 500.0, 200.0);  // log buckets: coarse but sane
  EXPECT_LE(p99, 1000.0);
}

TEST(Stats, HistogramNegativeClampsToZero) {
  Histogram h;
  h.Record(-5.0);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Stats, HistogramFractionalSamplesQuantileDistinctly) {
  // Ratios in (0,1) must land in real buckets, not collapse into the
  // underflow counter: quantiles of well-separated fractions stay separated.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(0.01);
  for (int i = 0; i < 100; ++i) h.Record(0.5);
  const double p25 = h.Quantile(0.25);
  const double p75 = h.Quantile(0.75);
  EXPECT_GT(p25, 0.0);
  EXPECT_LT(p25, 0.1);
  EXPECT_GT(p75, 0.25);
  EXPECT_LT(p75, 1.0);
}

TEST(Stats, HistogramTinyValuesUnderflowToZeroQuantile) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(1e-12);  // below 2^-32
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(Stats, HistogramStateRoundTripIsExact) {
  Histogram h;
  for (double v : {0.001, 0.37, 1.0, 42.0, 1e9}) h.Record(v);
  const auto state = h.SaveState();
  EXPECT_EQ(state.bucket_origin, Histogram::kBucketOrigin);
  Histogram restored;
  restored.RestoreState(state);
  EXPECT_EQ(restored.count(), h.count());
  EXPECT_DOUBLE_EQ(restored.sum(), h.sum());
  EXPECT_DOUBLE_EQ(restored.stddev(), h.stddev());
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(restored.Quantile(p), h.Quantile(p)) << "p=" << p;
  }
}

TEST(Stats, HistogramLegacyStateShiftsIntoNewBuckets) {
  // A pre-fractional-bucket snapshot carries bucket_origin 0: its bucket i
  // covered [2^(i/2), 2^((i+1)/2)). Restoring must shift those counts so
  // quantiles keep reporting the same magnitudes.
  Histogram reference;
  for (int i = 0; i < 64; ++i) reference.Record(16.0);
  Histogram::RawState legacy = reference.SaveState();
  // Rewrite the state the way an old writer laid it out: origin 0, bucket
  // index = floor(2·log2(v)).
  std::vector<std::uint64_t> old_buckets(legacy.buckets.size(), 0);
  old_buckets[8] = 64;  // floor(2·log2(16)) = 8
  legacy.buckets = old_buckets;
  legacy.bucket_origin = 0;
  Histogram restored;
  restored.RestoreState(legacy);
  EXPECT_EQ(restored.count(), reference.count());
  EXPECT_DOUBLE_EQ(restored.Quantile(0.5), reference.Quantile(0.5));
}

TEST(Stats, TimeSeriesMean) {
  TimeSeries ts;
  ts.Record(0, 1.0);
  ts.Record(1, 3.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 2.0);
  EXPECT_EQ(ts.samples().size(), 2u);
}

TEST(Stats, TimeSeriesUnboundedByDefault) {
  TimeSeries ts;
  for (int i = 0; i < 10000; ++i) ts.Record(i, i);
  EXPECT_EQ(ts.samples().size(), 10000u);
  EXPECT_EQ(ts.stride(), 1u);
}

TEST(Stats, TimeSeriesCapDecimatesDeterministically) {
  TimeSeries ts;
  ts.set_max_samples(8);
  for (int i = 0; i < 1000; ++i) {
    ts.Record(static_cast<TimePoint>(i), static_cast<double>(i));
  }
  EXPECT_LE(ts.samples().size(), 8u);
  EXPECT_EQ(ts.ticks(), 1000u);
  // Retained sample k is exactly the record made at tick k·stride, so the
  // decimated series is a strict subset of the full one.
  for (std::size_t k = 0; k < ts.samples().size(); ++k) {
    const auto tick = static_cast<double>(k * ts.stride());
    EXPECT_DOUBLE_EQ(ts.samples()[k].value, tick);
  }
  // Decimation is a pure function of the record sequence.
  TimeSeries twin;
  twin.set_max_samples(8);
  for (int i = 0; i < 1000; ++i) {
    twin.Record(static_cast<TimePoint>(i), static_cast<double>(i));
  }
  ASSERT_EQ(twin.samples().size(), ts.samples().size());
  EXPECT_EQ(twin.stride(), ts.stride());
  for (std::size_t k = 0; k < ts.samples().size(); ++k) {
    EXPECT_EQ(twin.samples()[k].time, ts.samples()[k].time);
  }
}

TEST(Stats, TimeSeriesRestoreBypassesDecimation) {
  TimeSeries ts;
  ts.set_max_samples(4);
  std::vector<TimeSeries::Sample> samples;
  for (int k = 0; k < 6; ++k) {
    samples.push_back({static_cast<TimePoint>(k * 16), 1.0});
  }
  ts.RestoreState(samples, /*stride=*/16, /*ticks=*/96);
  EXPECT_EQ(ts.samples().size(), 6u);  // verbatim, even past the cap
  EXPECT_EQ(ts.stride(), 16u);
  EXPECT_EQ(ts.ticks(), 96u);
}

TEST(Stats, RegistryFindsByName) {
  StatsRegistry reg;
  reg.GetCounter("a").Add(3);
  EXPECT_EQ(reg.CounterValue("a"), 3u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  reg.GetHistogram("h").Record(1.0);
  EXPECT_NE(reg.FindHistogram("h"), nullptr);
}

TEST(Stats, RegistryAcceptsStringViewKeys) {
  // Hot paths look metrics up with string_views sliced out of larger
  // buffers; the heterogeneous comparator must find the same entries.
  StatsRegistry reg;
  const std::string composite = "wn.shuttles_injected.extra";
  const std::string_view sliced(composite.data(), 20);  // "wn.shuttles_injected"
  reg.GetCounter(sliced).Add(2);
  EXPECT_EQ(reg.CounterValue("wn.shuttles_injected"), 2u);
  reg.GetCounter(std::string_view("wn.shuttles_injected")).Add(1);
  EXPECT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.CounterValue(sliced), 3u);
  reg.GetTimeSeries(sliced).Record(0, 1.0);
  EXPECT_NE(reg.FindTimeSeries("wn.shuttles_injected"), nullptr);
}

TEST(Stats, SummarizeComputesMeanStddev) {
  const auto ms = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ms.mean, 2.5);
  EXPECT_NEAR(ms.stddev, 1.29, 0.01);
  const auto empty = Summarize({});
  EXPECT_EQ(empty.mean, 0.0);
}

// ---- Trace ----

TEST(Trace, RecordsAndFilters) {
  TraceSink sink(16);
  sink.Log(0, TraceLevel::kInfo, "net", "link up");
  sink.Log(1, TraceLevel::kError, "net", "link down");
  sink.Log(2, TraceLevel::kInfo, "vm", "ran program");
  EXPECT_EQ(sink.entries().size(), 3u);
  EXPECT_EQ(sink.CountContaining("link"), 2u);
  EXPECT_EQ(sink.ForComponent("vm").size(), 1u);
}

TEST(Trace, CapacityEvictsOldest) {
  TraceSink sink(2);
  sink.Log(0, TraceLevel::kInfo, "a", "first");
  sink.Log(1, TraceLevel::kInfo, "a", "second");
  sink.Log(2, TraceLevel::kInfo, "a", "third");
  ASSERT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.entries().front().message, "second");
}

TEST(Trace, MinLevelSuppresses) {
  TraceSink sink(16);
  sink.set_min_level(TraceLevel::kWarn);
  sink.Log(0, TraceLevel::kDebug, "a", "quiet");
  sink.Log(0, TraceLevel::kError, "a", "loud");
  EXPECT_EQ(sink.entries().size(), 1u);
}

TEST(Trace, ZeroCapacityRetainsNothing) {
  TraceSink sink(0);
  sink.Log(0, TraceLevel::kError, "a", "dropped");
  EXPECT_TRUE(sink.entries().empty());
  sink.RestoreEntry({0, TraceLevel::kError, "a", "also dropped"});
  EXPECT_TRUE(sink.entries().empty());
  std::ostringstream out;
  sink.WriteJsonl(out);
  EXPECT_EQ(out.str(), "");
}

TEST(Trace, RestoreEntryBypassesMinLevelButNotCapacity) {
  TraceSink sink(2);
  sink.set_min_level(TraceLevel::kError);
  // Log() filters below min level; RestoreEntry() must not (a snapshot
  // records what was retained, regardless of the current filter).
  sink.Log(0, TraceLevel::kDebug, "a", "filtered");
  EXPECT_TRUE(sink.entries().empty());
  sink.RestoreEntry({1, TraceLevel::kDebug, "a", "restored-1"});
  sink.RestoreEntry({2, TraceLevel::kDebug, "a", "restored-2"});
  sink.RestoreEntry({3, TraceLevel::kDebug, "a", "restored-3"});
  ASSERT_EQ(sink.entries().size(), 2u);  // capacity still enforced
  EXPECT_EQ(sink.entries().front().message, "restored-2");
  EXPECT_EQ(sink.entries().back().message, "restored-3");
}

TEST(Trace, WriteJsonlEscapesControlCharacters) {
  TraceSink sink(4);
  sink.Log(7, TraceLevel::kWarn, "a\"b", "line1\nline2\ttab\\slash\x01");
  std::ostringstream out;
  sink.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"t\":7,\"level\":\"WARN\",\"component\":\"a\\\"b\","
            "\"message\":\"line1\\nline2\\ttab\\\\slash\\u0001\"}\n");
}

// ---- Replica runner ----

TEST(Replica, AggregatesAcrossReplicas) {
  const auto result = RunReplicas(
      [](std::size_t index, std::uint64_t) {
        return ReplicaMetrics{{"value", static_cast<double>(index)}};
      },
      5, 123, 2);
  ASSERT_EQ(result.count("value"), 1u);
  const auto& agg = result.at("value");
  EXPECT_EQ(agg.samples, 5u);
  EXPECT_DOUBLE_EQ(agg.mean, 2.0);  // mean of 0..4
  EXPECT_DOUBLE_EQ(agg.min, 0.0);
  EXPECT_DOUBLE_EQ(agg.max, 4.0);
}

TEST(Replica, SeedsAreDeterministicAndDistinct) {
  std::vector<std::uint64_t> seeds_a(4), seeds_b(4);
  auto run = [](std::vector<std::uint64_t>& out) {
    (void)RunReplicas(
        [&out](std::size_t index, std::uint64_t seed) {
          out[index] = seed;
          return ReplicaMetrics{};
        },
        4, 99, 1);
  };
  run(seeds_a);
  run(seeds_b);
  EXPECT_EQ(seeds_a, seeds_b);
  EXPECT_NE(seeds_a[0], seeds_a[1]);
}

TEST(Replica, ParallelMatchesSerial) {
  auto fn = [](std::size_t index, std::uint64_t seed) {
    viator::Rng rng(seed);
    double acc = 0;
    for (int i = 0; i < 100; ++i) acc += rng.NextDouble();
    return ReplicaMetrics{{"acc", acc + static_cast<double>(index)}};
  };
  const auto serial = RunReplicas(fn, 8, 7, 1);
  const auto parallel = RunReplicas(fn, 8, 7, 8);
  EXPECT_DOUBLE_EQ(serial.at("acc").mean, parallel.at("acc").mean);
  EXPECT_DOUBLE_EQ(serial.at("acc").stddev, parallel.at("acc").stddev);
}

TEST(Replica, ZeroReplicasYieldsEmpty) {
  const auto result = RunReplicas(
      [](std::size_t, std::uint64_t) { return ReplicaMetrics{{"x", 1.0}}; },
      0, 1, 1);
  EXPECT_TRUE(result.empty());
}

// ---- Calendar-queue scheduler edge cases -----------------------------------

TEST(CalendarQueue, SameTimestampBurstDispatchesInScheduleOrder) {
  // A burst of events at one instant must dispatch in exact schedule
  // (sequence) order — the (when, seq) total order the journal depends on.
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    s.ScheduleAt(500, [&order, i] { order.push_back(i); });
  }
  s.RunAll();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(order[i], i);
}

TEST(CalendarQueue, FarFutureEventsInterleaveCorrectly) {
  // Events far beyond the calendar's current "year" (same bucket modulo
  // the ring) must not jump the queue; near events keep dispatching first.
  Simulator s;
  std::vector<TimePoint> fired;
  const auto record = [&] { fired.push_back(s.now()); };
  s.ScheduleAt(1'000'000'000'000, record);   // ~17 virtual minutes out
  s.ScheduleAt(10, record);
  s.ScheduleAt(999'999'999'999, record);
  s.ScheduleAt(500'000'000'000, record);
  s.ScheduleAt(11, record);
  s.RunAll();
  const std::vector<TimePoint> expect = {10, 11, 500'000'000'000,
                                         999'999'999'999, 1'000'000'000'000};
  EXPECT_EQ(fired, expect);
}

TEST(CalendarQueue, CancellationChurnKeepsOrderAndCounts) {
  // Cancel every other event after queueing: survivors must dispatch in
  // order, cancelled slots must neither fire nor leak into PendingEvents.
  Simulator s;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(
        s.ScheduleAt(100 + (i % 7), [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].Cancel();
  EXPECT_EQ(s.PendingEvents(), 100u);
  s.RunAll();
  ASSERT_EQ(order.size(), 100u);
  // Survivors sorted by (when, seq): group by timestamp 100..106, then seq.
  std::vector<int> expect;
  for (int when = 0; when < 7; ++when) {
    for (int i = 1; i < 200; i += 2) {
      if (i % 7 == when) expect.push_back(i);
    }
  }
  EXPECT_EQ(order, expect);
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST(CalendarQueue, RestoreClockAcrossQueuedTombstones) {
  // RestoreClock requires an empty schedule; cancelled-but-still-queued
  // tombstones must not count against that.
  Simulator s;
  EventHandle h = s.ScheduleAt(50, [] {});
  h.Cancel();
  EXPECT_EQ(s.PendingEvents(), 0u);
  EXPECT_TRUE(s.RestoreClock(1000, 0).ok());
  EXPECT_EQ(s.now(), 1000u);
  // And scheduling after the jump lands relative to the restored clock.
  TimePoint fired = 0;
  s.ScheduleAfter(5, [&] { fired = s.now(); });
  s.RunAll();
  EXPECT_EQ(fired, 1005u);
}

TEST(CalendarQueue, DispatchMovesCallbacksInsteadOfCopying) {
  // Regression for the old priority_queue const_cast move-out hack: once a
  // callback is queued, dispatch must MOVE it out of its slot, never copy
  // it (std::function itself requires copyable targets, so count copies
  // through a capture instead of using a move-only one).
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& other) : copies(other.copies) {
      ++*copies;
    }
    CopyCounter(CopyCounter&& other) noexcept : copies(other.copies) {}
    CopyCounter& operator=(const CopyCounter&) = delete;
    CopyCounter& operator=(CopyCounter&&) = delete;
  };
  Simulator s;
  int copies = 0;
  bool fired = false;
  {
    CopyCounter counter(&copies);
    s.ScheduleAt(10, [&fired, counter = std::move(counter)] { fired = true; });
  }
  const int copies_after_schedule = copies;
  s.RunAll();
  EXPECT_TRUE(fired);
  EXPECT_EQ(copies, copies_after_schedule)
      << "dispatch copied the callback instead of moving it";
}

TEST(CalendarQueue, HandleReadsFiredDuringOwnCallback) {
  // Contract carried over from the shared_ptr<bool> era: while an event's
  // callback runs, the handle already reads "fired" (slot freed first).
  Simulator s;
  EventHandle h;
  bool pending_inside = true;
  h = s.ScheduleAt(10, [&] { pending_inside = h.pending(); });
  EXPECT_TRUE(h.pending());
  s.RunAll();
  EXPECT_FALSE(pending_inside);
  EXPECT_FALSE(h.pending());
}

TEST(CalendarQueue, ManyBucketResizesPreserveTotalOrder) {
  // Push enough events with spread-out timestamps to force calendar grows,
  // then drain while pushing more (shrink pressure): total order must hold.
  Simulator s;
  Rng rng(99);
  std::vector<std::pair<TimePoint, int>> expect;
  int tag = 0;
  std::vector<std::pair<TimePoint, int>> fired;
  for (int i = 0; i < 5000; ++i) {
    const TimePoint when = rng.UniformInt(1, 1'000'000);
    expect.emplace_back(when, tag);
    s.ScheduleAt(when, [&fired, &s, when, t = tag] {
      fired.emplace_back(when, t);
    });
    ++tag;
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  s.RunAll();
  EXPECT_EQ(fired, expect);
}

}  // namespace
}  // namespace viator::sim
