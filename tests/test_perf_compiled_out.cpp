// The compiled-out half of the perf-counter cost contract (docs/PERF.md):
// this translation unit is built with -DVIATOR_PERF_COUNTERS=0 (see
// tests/CMakeLists.txt), so the probe macros must expand to nothing at all —
// no probe can fire even with the runtime switch forced on, and the macros
// must still parse everywhere a statement can appear.
#include <cstddef>

#include <gtest/gtest.h>

#include "telemetry/perf_counters.h"

#if VIATOR_PERF_COUNTERS
#error "this test must be compiled with -DVIATOR_PERF_COUNTERS=0"
#endif

namespace viator {
namespace {

std::uint64_t InstrumentedWork(std::uint64_t n) {
  VIATOR_PERF_SCOPE(kSimDispatch);
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    VIATOR_PERF_COUNT(kRngDraw);
    acc += i * 2654435761u;
  }
  if (n > 0) VIATOR_PERF_SCOPE(kMergeWindow);  // statement position
  return acc;
}

TEST(PerfCompiledOut, NoProbeFiresEvenWithRuntimeSwitchOn) {
  telemetry::perf::ResetAll();
  telemetry::perf::SetEnabled(true);
  EXPECT_NE(InstrumentedWork(1000), 0u);
  telemetry::perf::SetEnabled(false);

  const auto aggregate = telemetry::perf::Aggregate();
  for (std::size_t i = 0; i < telemetry::perf::kMetricCount; ++i) {
    EXPECT_EQ(aggregate[i].calls, 0u) << telemetry::perf::MetricName(
        static_cast<telemetry::perf::Metric>(i));
    EXPECT_EQ(aggregate[i].cycles, 0u);
  }
}

}  // namespace
}  // namespace viator
