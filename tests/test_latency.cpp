// Tier-1 tests for the Latency Observatory's substrate: the deterministic
// quantile sketch (bucket math, quantile semantics, merge algebra, the
// 1/32 relative-error bound), the per-network Lane (lifecycle accounting,
// cross-shard continuity, window folds, worst-K exemplars, probe guards)
// and the SLO burn detector's episode grammar. The end-to-end claims —
// replay neutrality, thread-count bucket-exactness, overhead — are
// bench_latency's gates; everything here is the pure logic underneath them.
#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "health/slo_burn.h"
#include "telemetry/latency_plane.h"
#include "telemetry/latency_sketch.h"

namespace viator {
namespace {

namespace lat = telemetry::lat;
using lat::LatencySketch;

// ---- Sketch bucket math -----------------------------------------------------

TEST(LatencySketch, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < LatencySketch::kSubBuckets; ++v) {
    EXPECT_EQ(LatencySketch::BucketIndex(v), v);
    EXPECT_EQ(LatencySketch::BucketLowerBound(v), v);
    EXPECT_EQ(LatencySketch::BucketUpperBound(v), v + 1);
    EXPECT_EQ(LatencySketch::BucketRepresentative(v), v);
  }
}

TEST(LatencySketch, BucketBoundsPartitionTheValueLine) {
  // Every bucket's [lower, upper) must map back to that bucket, and upper
  // must be the next bucket's lower: the buckets tile the line with no gap
  // and no overlap.
  for (std::size_t i = 0; i < LatencySketch::kBucketCount; ++i) {
    const std::uint64_t lo = LatencySketch::BucketLowerBound(i);
    const std::uint64_t hi = LatencySketch::BucketUpperBound(i);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(LatencySketch::BucketIndex(lo), i);
    EXPECT_EQ(LatencySketch::BucketIndex(hi - 1), i);
    const std::uint64_t rep = LatencySketch::BucketRepresentative(i);
    EXPECT_GE(rep, lo);
    EXPECT_LT(rep, hi);
    if (i + 1 < LatencySketch::kBucketCount) {
      EXPECT_EQ(LatencySketch::BucketLowerBound(i + 1), hi);
    }
  }
}

TEST(LatencySketch, HugeValuesClampIntoTheTopBucket) {
  const std::size_t top = LatencySketch::kBucketCount - 1;
  EXPECT_EQ(LatencySketch::BucketIndex(~std::uint64_t{0}), top);
  EXPECT_EQ(LatencySketch::BucketIndex(std::uint64_t{1} << 60), top);
  LatencySketch sketch;
  sketch.Record(~std::uint64_t{0});
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.sum(), ~std::uint64_t{0});  // exact sum, bucketed value
  EXPECT_EQ(sketch.ValueAtQuantile(1.0),
            LatencySketch::BucketRepresentative(top));
}

TEST(LatencySketch, RelativeErrorStaysUnderOneThirtySecond) {
  // The design bound: midpoint representative of a 1/16-wide bucket is
  // within 1/32 of any member. Checked over a deterministic pseudo-random
  // sample spanning every octave.
  Rng rng(0x5EEDF00DULL);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t shift = rng.UniformInt(0, 47);
    const std::uint64_t v = rng.Next() >> shift;
    if (v >= (std::uint64_t{1} << 49)) continue;  // clamp region is exempt
    const std::uint64_t rep =
        LatencySketch::BucketRepresentative(LatencySketch::BucketIndex(v));
    const double err =
        v == 0 ? 0.0
               : std::abs(static_cast<double>(rep) - static_cast<double>(v)) /
                     static_cast<double>(v);
    ASSERT_LE(err, 1.0 / 32.0 + 1e-12) << "value " << v << " rep " << rep;
  }
}

TEST(LatencySketch, QuantileWalksRanksExactly) {
  LatencySketch sketch;
  for (std::uint64_t v : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) sketch.Record(v);
  // Values 0..15 are exact buckets, so quantiles are the classic ceil-rank
  // order statistics with no rounding.
  EXPECT_EQ(sketch.ValueAtQuantile(0.0), 1u);
  EXPECT_EQ(sketch.ValueAtQuantile(0.1), 1u);
  EXPECT_EQ(sketch.ValueAtQuantile(0.5), 5u);
  EXPECT_EQ(sketch.ValueAtQuantile(0.51), 6u);
  EXPECT_EQ(sketch.ValueAtQuantile(1.0), 10u);
  EXPECT_EQ(sketch.MinValue(), 1u);
  EXPECT_EQ(sketch.MaxValue(), 10u);
  EXPECT_EQ(sketch.sum(), 55u);
  EXPECT_EQ(LatencySketch().ValueAtQuantile(0.5), 0u);  // empty → 0
}

TEST(LatencySketch, MergeIsAssociativeCommutativeWithEmptyIdentity) {
  Rng rng(0xA1B2C3ULL);
  LatencySketch a, b, c;
  for (int i = 0; i < 500; ++i) a.Record(rng.UniformInt(0, 1'000'000));
  for (int i = 0; i < 300; ++i) b.Record(rng.UniformInt(0, 50));
  for (int i = 0; i < 200; ++i) c.Record(rng.Next() >> 20);

  LatencySketch ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencySketch bc = b;
  bc.Merge(c);
  LatencySketch a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(ab_c, a_bc);  // associative

  LatencySketch ba = b;
  ba.Merge(a);
  LatencySketch ab = a;
  ab.Merge(b);
  EXPECT_EQ(ab, ba);  // commutative

  LatencySketch with_empty = a;
  with_empty.Merge(LatencySketch{});
  EXPECT_EQ(with_empty, a);  // identity
}

TEST(LatencySketch, SparseRestoreRebuildsBitIdentically) {
  // The genesis section stores only non-zero buckets plus the exact totals;
  // rebuilding from that sparse form must reproduce the sketch exactly.
  Rng rng(0x9E5717ULL);
  LatencySketch original;
  for (int i = 0; i < 1000; ++i) original.Record(rng.Next() >> 24);

  LatencySketch rebuilt;
  for (std::size_t i = 0; i < LatencySketch::kBucketCount; ++i) {
    if (original.buckets()[i] != 0) {
      rebuilt.RestoreBucket(i, original.buckets()[i]);
    }
  }
  rebuilt.RestoreTotals(original.count(), original.sum());
  EXPECT_EQ(rebuilt, original);
}

// ---- Lane lifecycle ---------------------------------------------------------

TEST(LatencyLane, DeliveryAttributesEndToEndByClass) {
  lat::Lane lane;
  lane.OnBirth(1, 1000, /*cls=*/0, /*trace_id=*/0xAB);
  lane.OnBirth(2, 2000, /*cls=*/5, 0);
  EXPECT_EQ(lane.open_flights(), 2u);

  lane.OnDelivered(1, 4000);  // data, 3000 ns
  lane.OnDelivered(2, 2500);  // jet, 500 ns
  lane.OnDelivered(99, 9000);  // unknown flight: ignored
  EXPECT_EQ(lane.open_flights(), 0u);
  EXPECT_EQ(lane.DeliveredCount(), 2u);
  EXPECT_EQ(lane.Sketch(lat::Stage::kDelivery, 0).count(), 1u);
  EXPECT_EQ(lane.Sketch(lat::Stage::kDelivery, 0).sum(), 3000u);
  EXPECT_EQ(lane.Sketch(lat::Stage::kDelivery, 5).sum(), 500u);
  EXPECT_EQ(lane.window_sketch().count(), 2u);
}

TEST(LatencyLane, DropsCloseIntoTheDropStage) {
  lat::Lane lane;
  lane.OnBirth(7, 100, /*cls=*/2, 0);
  lane.OnDropped(7, 600);
  EXPECT_EQ(lane.DroppedCount(), 1u);
  EXPECT_EQ(lane.Sketch(lat::Stage::kDrop, 2).sum(), 500u);
  EXPECT_EQ(lane.DeliveredCount(), 0u);
  EXPECT_EQ(lane.window_sketch().count(), 0u);  // drops never enter delivery
  EXPECT_EQ(lane.open_flights(), 0u);
}

TEST(LatencyLane, ExecClassesByRoleAndIgnoresUnpairedDone) {
  lat::Lane lane;
  lane.OnBirth(3, 0, 0, 0);
  lane.OnExecDone(3, 50, /*role=*/1);  // no matching enter: ignored
  EXPECT_EQ(lane.Sketch(lat::Stage::kExec, 1).count(), 0u);
  lane.OnExecEnter(3, 100);
  lane.OnExecDone(3, 350, /*role=*/1);
  EXPECT_EQ(lane.Sketch(lat::Stage::kExec, 1).count(), 1u);
  EXPECT_EQ(lane.Sketch(lat::Stage::kExec, 1).sum(), 250u);
  // The flight is still open (exec is a phase, not a terminal).
  EXPECT_EQ(lane.open_flights(), 1u);
}

TEST(LatencyLane, DepartArriveCarriesBirthAcrossLanes) {
  lat::Lane source, destination;
  source.OnBirth(11, 500, /*cls=*/1, /*trace_id=*/0xC0FFEE);

  const lat::Lane::Departure d = source.Depart(11);
  ASSERT_TRUE(d.valid);
  EXPECT_EQ(d.birth, 500u);
  EXPECT_EQ(d.trace_id, 0xC0FFEEu);
  EXPECT_EQ(source.open_flights(), 0u);
  EXPECT_FALSE(source.Depart(11).valid);  // already departed

  destination.Arrive(11, d);
  destination.OnDelivered(11, 2500);
  // End-to-end latency measured from the original birth, not the handoff.
  EXPECT_EQ(destination.Sketch(lat::Stage::kDelivery, 1).sum(), 2000u);

  destination.Arrive(12, lat::Lane::Departure{});  // invalid: ignored
  EXPECT_EQ(destination.open_flights(), 0u);
}

TEST(LatencyLane, FoldWindowResetsWindowStateOnly) {
  lat::Lane lane;
  lane.OnBirth(1, 0, 0, 0x11);
  lane.OnBirth(2, 0, 0, 0x22);
  lane.OnDelivered(1, 100);
  lane.OnDelivered(2, 900);

  const lat::Lane::WindowStats w = lane.FoldWindow();
  EXPECT_EQ(w.delivered, 2u);
  EXPECT_GT(w.p50_ns, 0u);
  EXPECT_GE(w.p99_ns, w.p50_ns);
  ASSERT_EQ(w.worst.size(), 2u);
  EXPECT_EQ(w.worst.front().trace_id, 0x22u);  // worst-first

  // The window zeroed; the cumulative per-class sketches kept integrating.
  const lat::Lane::WindowStats empty = lane.FoldWindow();
  EXPECT_EQ(empty.delivered, 0u);
  EXPECT_TRUE(empty.worst.empty());
  EXPECT_EQ(lane.DeliveredCount(), 2u);
}

TEST(LatencyLane, ExemplarsKeepWorstKInDeterministicOrder) {
  lat::Lane lane;
  lane.set_exemplar_capacity(2);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    lane.OnBirth(i, 0, 0, /*trace_id=*/i);
    lane.OnDelivered(i, i * 100);  // durations 100..500
  }
  const lat::Lane::WindowStats w = lane.FoldWindow();
  ASSERT_EQ(w.worst.size(), 2u);
  EXPECT_EQ(w.worst[0].duration_ns, 500u);
  EXPECT_EQ(w.worst[0].trace_id, 5u);
  EXPECT_EQ(w.worst[1].duration_ns, 400u);

  // Duration ties break on trace id ascending: deterministic at any
  // insertion order.
  lat::Exemplar a{300, 7, 0, 0}, b{300, 9, 0, 0};
  EXPECT_TRUE(a.WorseThan(b));
  EXPECT_FALSE(b.WorseThan(a));
}

TEST(LatencyLane, MergeIntoFoldsEveryStage) {
  lat::Lane a, b, merged;
  a.OnBirth(1, 0, 0, 0);
  a.OnDelivered(1, 64);
  a.RecordHop(0, 32);
  b.OnBirth(2, 0, 3, 0);
  b.OnDropped(2, 16);
  b.RecordQueue(3, 8);

  a.MergeInto(merged);
  b.MergeInto(merged);
  EXPECT_EQ(merged.DeliveredCount(), 1u);
  EXPECT_EQ(merged.DroppedCount(), 1u);
  EXPECT_EQ(merged.Sketch(lat::Stage::kHop, 0).sum(), 32u);
  EXPECT_EQ(merged.Sketch(lat::Stage::kQueue, 3).sum(), 8u);
}

// ---- Probe guards -----------------------------------------------------------

/// Duck-typed stand-in for wli::Shuttle: the probes only need lat_id,
/// header.kind and trace.trace_id.
struct FakeShuttle {
  std::uint64_t lat_id = 0;
  struct {
    std::uint8_t kind = 0;
  } header;
  struct {
    std::uint64_t trace_id = 0;
  } trace;
};

TEST(LatencyProbes, DisabledOrNullLaneIsInert) {
  lat::SetEnabled(false);
  lat::Lane lane;
  FakeShuttle shuttle;
  VIATOR_LAT_BIRTH(&lane, shuttle, 100);
  EXPECT_EQ(shuttle.lat_id, 0u);  // no flight id assigned while off
  EXPECT_EQ(lane.open_flights(), 0u);

  lat::SetEnabled(true);
  VIATOR_LAT_BIRTH(static_cast<lat::Lane*>(nullptr), shuttle, 100);
  EXPECT_EQ(shuttle.lat_id, 0u);  // null lane: untouched
  lat::SetEnabled(false);
}

TEST(LatencyProbes, BirthAssignsOnceAndTerminalsClose) {
  lat::SetEnabled(true);
  lat::Lane lane;
  FakeShuttle shuttle;
  shuttle.header.kind = 5;
  shuttle.trace.trace_id = 0xFEED;
  VIATOR_LAT_BIRTH(&lane, shuttle, 100);
  ASSERT_NE(shuttle.lat_id, 0u);
  const std::uint64_t id = shuttle.lat_id;
  VIATOR_LAT_BIRTH(&lane, shuttle, 999);  // re-dispatch: keeps the flight
  EXPECT_EQ(shuttle.lat_id, id);
  EXPECT_EQ(lane.open_flights(), 1u);

  VIATOR_LAT_DELIVERED(&lane, shuttle, 400);
  EXPECT_EQ(lane.Sketch(lat::Stage::kDelivery, 5).sum(), 300u);
  EXPECT_EQ(lane.open_flights(), 0u);

  // A lost frame closes by bare id (the fabric may no longer hold the
  // shuttle when the loss is drawn).
  FakeShuttle lost;
  VIATOR_LAT_BIRTH(&lane, lost, 50);
  VIATOR_LAT_LOST(&lane, lost.lat_id, 60);
  EXPECT_EQ(lane.DroppedCount(), 1u);
  lat::SetEnabled(false);
}

// ---- SLO burn episodes ------------------------------------------------------

TEST(SloBurn, RaisesOnceAfterConsecutiveBreachWindows) {
  health::SloSpec spec;
  spec.quantile = 0.99;
  spec.bound_ns = 1000;
  spec.burn_windows = 3;
  health::SloBurnDetector detector({spec});

  EXPECT_FALSE(detector.Observe(0, 1500, 1).has_value());
  EXPECT_FALSE(detector.Observe(0, 1500, 2).has_value());
  const auto event = detector.Observe(0, 1500, 3, /*exemplar_trace=*/0xAB);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, health::HealthEventKind::kSloBurn);
  EXPECT_EQ(event->value, 1500.0);
  EXPECT_EQ(event->threshold, 1000.0);
  EXPECT_NE(event->detail.find("00000000000000ab"), std::string::npos);

  // Still burning: the episode stays open, no re-raise.
  EXPECT_FALSE(detector.Observe(0, 2000, 4).has_value());
  EXPECT_EQ(detector.events().size(), 1u);
}

TEST(SloBurn, HealthyWindowEndsTheEpisode) {
  health::SloSpec spec;
  spec.bound_ns = 1000;
  spec.burn_windows = 2;
  health::SloBurnDetector detector({spec});
  EXPECT_FALSE(detector.Observe(0, 1500, 1).has_value());
  EXPECT_TRUE(detector.Observe(0, 1500, 2).has_value());
  // Recovery (at bound counts as healthy), then a fresh sustained breach
  // raises a second, distinct episode.
  EXPECT_FALSE(detector.Observe(0, 1000, 3).has_value());
  EXPECT_FALSE(detector.Observe(0, 1500, 4).has_value());
  EXPECT_TRUE(detector.Observe(0, 1500, 5).has_value());
  EXPECT_EQ(detector.events().size(), 2u);
}

TEST(SloBurn, QuietWindowsAndBadSpecIndexAreNeutral) {
  health::SloSpec spec;
  spec.bound_ns = 1000;
  spec.burn_windows = 2;
  health::SloBurnDetector detector({spec});
  EXPECT_FALSE(detector.Observe(0, 1500, 1).has_value());
  // A quantile of 0 is a window with no deliveries, not a breach — and it
  // resets the burn run.
  EXPECT_FALSE(detector.Observe(0, 0, 2).has_value());
  EXPECT_FALSE(detector.Observe(0, 1500, 3).has_value());
  EXPECT_TRUE(detector.Observe(0, 1500, 4).has_value());
  // Out-of-range spec index: ignored, never throws.
  EXPECT_FALSE(detector.Observe(9, 99999, 5).has_value());
}

}  // namespace
}  // namespace viator
