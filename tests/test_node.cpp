// Tests for the node layer: profiles, resources, execution environments,
// the hardware plane / netbot docking and the NodeOS with generation gating.
#include <gtest/gtest.h>

#include "node/execution_env.h"
#include "node/hardware_plane.h"
#include "node/node_os.h"
#include "node/profile.h"
#include "node/resources.h"
#include "vm/assembler.h"

namespace viator::node {
namespace {

// ---- Profile taxonomy ----

TEST(Profile, AllRolesHaveNames) {
  for (int r = 0; r < static_cast<int>(FirstLevelRole::kRoleCount); ++r) {
    EXPECT_NE(FirstLevelRoleName(static_cast<FirstLevelRole>(r)), "?");
  }
}

TEST(Profile, AllClassesHaveNames) {
  for (int c = 0; c < static_cast<int>(SecondLevelClass::kClassCount); ++c) {
    EXPECT_NE(SecondLevelClassName(static_cast<SecondLevelClass>(c)), "?");
  }
}

TEST(Profile, DefaultClassForEveryRoleIsValid) {
  for (int r = 0; r < static_cast<int>(FirstLevelRole::kRoleCount); ++r) {
    const auto cls = DefaultClassFor(static_cast<FirstLevelRole>(r));
    EXPECT_LT(static_cast<int>(cls),
              static_cast<int>(SecondLevelClass::kClassCount));
  }
}

// ---- Resources ----

TEST(Resources, FuelBudgetEnforced) {
  ResourceQuota quota;
  quota.fuel_per_epoch = 1000;
  ResourceAccountant acc(quota);
  EXPECT_TRUE(acc.ChargeFuel(600).ok());
  EXPECT_TRUE(acc.ChargeFuel(400).ok());
  EXPECT_EQ(acc.ChargeFuel(1).code(), StatusCode::kResourceExhausted);
  acc.BeginEpoch();
  EXPECT_TRUE(acc.ChargeFuel(1000).ok());
  EXPECT_EQ(acc.total_fuel_used(), 2000u);
}

TEST(Resources, MemoryQuota) {
  ResourceQuota quota;
  quota.memory_bytes = 100;
  ResourceAccountant acc(quota);
  EXPECT_TRUE(acc.ChargeMemory(80).ok());
  EXPECT_FALSE(acc.ChargeMemory(30).ok());
  acc.ReleaseMemory(50);
  EXPECT_TRUE(acc.ChargeMemory(30).ok());
  acc.ReleaseMemory(1000);  // over-release clamps to zero
  EXPECT_EQ(acc.memory_used(), 0u);
}

TEST(Resources, PendingSlots) {
  ResourceQuota quota;
  quota.max_pending_shuttles = 2;
  ResourceAccountant acc(quota);
  EXPECT_TRUE(acc.AcquirePendingSlot().ok());
  EXPECT_TRUE(acc.AcquirePendingSlot().ok());
  EXPECT_FALSE(acc.AcquirePendingSlot().ok());
  acc.ReleasePendingSlot();
  EXPECT_TRUE(acc.AcquirePendingSlot().ok());
}

// ---- Execution environment ----

TEST(ExecutionEnv, RunsAndAccounts) {
  ExecutionEnvironment ee(1, SecondLevelClass::kFiltering,
                          RoleBinding::kModal);
  ResourceQuota quota;
  ResourceAccountant acc(quota);
  vm::Environment host;
  auto program = vm::Assemble("p", "push 1\npush 2\nadd\nhalt\n");
  auto result = ee.Execute(*program, host, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reason, vm::ExitReason::kHalted);
  EXPECT_EQ(ee.invocations(), 1u);
  EXPECT_EQ(ee.fuel_consumed(), 4u);
  EXPECT_EQ(acc.epoch_fuel_used(), 4u);
}

TEST(ExecutionEnv, RejectsWhenEpochBudgetLow) {
  ExecutionEnvironment ee(1, SecondLevelClass::kFiltering,
                          RoleBinding::kModal);
  ResourceQuota quota;
  quota.fuel_per_capsule = 1000;
  quota.fuel_per_epoch = 500;  // cannot admit even one full capsule
  ResourceAccountant acc(quota);
  vm::Environment host;
  auto program = vm::Assemble("p", "halt\n");
  EXPECT_EQ(ee.Execute(*program, host, acc).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExecutionEnv, CountsFaults) {
  ExecutionEnvironment ee(1, SecondLevelClass::kFiltering,
                          RoleBinding::kAuxiliary);
  ResourceQuota quota;
  ResourceAccountant acc(quota);
  struct FailingEnv : vm::Environment {
    Result<std::int64_t> Invoke(vm::Syscall,
                                std::span<const std::int64_t>) override {
      return Status(PermissionDenied("no"));
    }
  } host;
  auto program = vm::Assemble("p", "sys node_id\nhalt\n");
  auto result = ee.Execute(*program, host, acc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reason, vm::ExitReason::kFault);
  EXPECT_EQ(ee.faults(), 1u);
}

TEST(ExecutionEnv, ResidentLimit) {
  ExecutionEnvironment ee(1, SecondLevelClass::kBoosting,
                          RoleBinding::kAuxiliary);
  EXPECT_TRUE(ee.AddResident(1, 2).ok());
  EXPECT_TRUE(ee.AddResident(2, 2).ok());
  EXPECT_TRUE(ee.AddResident(1, 2).ok());  // duplicate is idempotent
  EXPECT_FALSE(ee.AddResident(3, 2).ok());
  EXPECT_TRUE(ee.IsResident(1));
  EXPECT_FALSE(ee.IsResident(3));
}

// ---- Hardware plane ----

TEST(HardwarePlane, InstallConsumesGatesAndSlots) {
  HardwarePlane plane(10000, 2);
  HardwareModule m1{1, "filter", SecondLevelClass::kFiltering, 6000, 4.0, 0};
  auto latency = plane.Install(m1);
  ASSERT_TRUE(latency.ok());
  EXPECT_GT(*latency, 0u);
  EXPECT_EQ(plane.gates_used(), 6000u);

  HardwareModule m2{2, "big", SecondLevelClass::kBoosting, 6000, 2.0, 0};
  EXPECT_EQ(plane.Install(m2).status().code(),
            StatusCode::kResourceExhausted);  // gate budget

  HardwareModule m3{3, "small", SecondLevelClass::kBoosting, 1000, 2.0, 0};
  ASSERT_TRUE(plane.Install(m3).ok());
  HardwareModule m4{4, "tiny", SecondLevelClass::kCombining, 100, 2.0, 0};
  EXPECT_EQ(plane.Install(m4).status().code(),
            StatusCode::kResourceExhausted);  // slots
}

TEST(HardwarePlane, DuplicateIdRejected) {
  HardwarePlane plane(10000, 4);
  HardwareModule m{1, "x", SecondLevelClass::kFiltering, 100, 2.0, 0};
  ASSERT_TRUE(plane.Install(m).ok());
  EXPECT_EQ(plane.Install(m).status().code(), StatusCode::kAlreadyExists);
}

TEST(HardwarePlane, LatencyScalesWithGateCount) {
  HardwarePlane plane(1000000, 4);
  HardwareModule small{1, "s", SecondLevelClass::kFiltering, 1000, 2.0, 0};
  HardwareModule large{2, "l", SecondLevelClass::kBoosting, 100000, 2.0, 0};
  const auto ls = plane.Install(small);
  const auto ll = plane.Install(large);
  EXPECT_GT(*ll, *ls);
}

TEST(HardwarePlane, DarkSiliconUntilDriverActive) {
  // The 3G synchronization hazard: installed circuitry without its driver
  // gives no speedup.
  HardwarePlane plane(10000, 4);
  HardwareModule m{1, "xcode", SecondLevelClass::kTranscoding, 5000, 8.0,
                   /*driver_digest=*/0xabc};
  ASSERT_TRUE(plane.Install(m).ok());
  EXPECT_TRUE(plane.HasModuleFor(SecondLevelClass::kTranscoding));
  EXPECT_DOUBLE_EQ(plane.SpeedupFor(SecondLevelClass::kTranscoding), 1.0);

  // Wrong driver digest is refused.
  EXPECT_EQ(plane.ActivateDriver(1, 0xdef).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(plane.ActivateDriver(1, 0xabc).ok());
  EXPECT_DOUBLE_EQ(plane.SpeedupFor(SecondLevelClass::kTranscoding), 8.0);
}

TEST(HardwarePlane, RemoveFreesGates) {
  HardwarePlane plane(10000, 4);
  HardwareModule m{1, "x", SecondLevelClass::kFiltering, 5000, 2.0, 0};
  ASSERT_TRUE(plane.Install(m).ok());
  ASSERT_TRUE(plane.Remove(1).ok());
  EXPECT_EQ(plane.gates_used(), 0u);
  EXPECT_EQ(plane.Remove(1).status().code(), StatusCode::kNotFound);
}

TEST(HardwarePlane, NetbotDockAddsOverhead) {
  HardwarePlane plane(100000, 4);
  Netbot bot;
  bot.module = {7, "bot", SecondLevelClass::kBoosting, 10000, 3.0, 0x1};
  const auto dock = plane.DockNetbot(bot);
  ASSERT_TRUE(dock.ok());
  HardwarePlane plane2(100000, 4);
  const auto plain = plane2.Install(bot.module);
  EXPECT_GT(*dock, *plain);
}

// ---- NodeOS ----

TEST(NodeOs, GenerationCapabilities) {
  const auto g1 = Capabilities::ForGeneration(1);
  EXPECT_TRUE(g1.ee_programmable);
  EXPECT_FALSE(g1.nodeos_programmable);
  EXPECT_FALSE(g1.hardware_reconfigurable);
  EXPECT_FALSE(g1.self_replicating);
  const auto g3 = Capabilities::ForGeneration(3);
  EXPECT_TRUE(g3.hardware_reconfigurable);
  EXPECT_FALSE(g3.self_replicating);
  const auto g4 = Capabilities::ForGeneration(4);
  EXPECT_TRUE(g4.self_replicating);
}

TEST(NodeOs, RoleSwitchMechanismLatencyOrdering) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(4));
  const auto sw = os.RequestRoleSwitch(FirstLevelRole::kFusion,
                                       SwitchMechanism::kResidentSoftware);
  const auto code = os.RequestRoleSwitch(FirstLevelRole::kFission,
                                         SwitchMechanism::kTransportedCode);
  const auto hw = os.RequestRoleSwitch(FirstLevelRole::kCaching,
                                       SwitchMechanism::kHardwareReconfig);
  const auto bot = os.RequestRoleSwitch(FirstLevelRole::kDelegation,
                                        SwitchMechanism::kNetbotDock);
  ASSERT_TRUE(sw.ok() && code.ok() && hw.ok() && bot.ok());
  EXPECT_LT(*sw, *code);
  EXPECT_LT(*code, *hw);
  EXPECT_LT(*hw, *bot);
  EXPECT_EQ(os.role_switches(), 4u);
  EXPECT_EQ(os.current_role(), FirstLevelRole::kDelegation);
}

TEST(NodeOs, GenerationGatesHardwareSwitch) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(2));
  EXPECT_EQ(os.RequestRoleSwitch(FirstLevelRole::kFusion,
                                 SwitchMechanism::kHardwareReconfig)
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_TRUE(os.RequestRoleSwitch(FirstLevelRole::kFusion,
                                   SwitchMechanism::kResidentSoftware)
                  .ok());
}

TEST(NodeOs, NextStepRegister) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(4));
  os.set_next_step(FirstLevelRole::kFission);
  EXPECT_EQ(os.next_step(), FirstLevelRole::kFission);
}

TEST(NodeOs, EeRegistryOnePerClass) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(4));
  auto& a = os.GetOrCreateEe(SecondLevelClass::kFiltering);
  auto& b = os.GetOrCreateEe(SecondLevelClass::kFiltering);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(os.ee_count(), 1u);
  os.GetOrCreateEe(SecondLevelClass::kBoosting);
  EXPECT_EQ(os.ee_count(), 2u);
  EXPECT_NE(os.FindEe(SecondLevelClass::kBoosting), nullptr);
  EXPECT_EQ(os.FindEe(SecondLevelClass::kTranscoding), nullptr);
}

TEST(NodeOs, ModalPromotionSticks) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(4));
  auto& ee =
      os.GetOrCreateEe(SecondLevelClass::kFiltering, RoleBinding::kAuxiliary);
  EXPECT_EQ(ee.binding(), RoleBinding::kAuxiliary);
  os.GetOrCreateEe(SecondLevelClass::kFiltering, RoleBinding::kModal);
  EXPECT_EQ(ee.binding(), RoleBinding::kModal);
}

TEST(NodeOs, AdmitVerifiesAndAuthorizes) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(2));
  auto good = vm::Assemble("good", "push 1\nhalt\n");
  EXPECT_TRUE(os.AdmitProgram(*good).ok());
  EXPECT_TRUE(os.code_cache().Contains(good->digest()));

  std::vector<vm::Instruction> bad_code = {{vm::Opcode::kAdd, 0}};
  EXPECT_FALSE(os.AdmitProgram(vm::Program("bad", bad_code)).ok());

  os.set_authorizer([](const vm::Program& p) -> Status {
    if (p.name() == "banned") return PermissionDenied("policy");
    return OkStatus();
  });
  auto banned = vm::Assemble("banned", "push 1\nhalt\n");
  EXPECT_EQ(os.AdmitProgram(*banned).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(NodeOs, LegacyNodeRefusesCode) {
  Capabilities caps = Capabilities::ForGeneration(1);
  caps.ee_programmable = false;  // pre-active legacy node
  NodeOs os(ResourceQuota{}, caps);
  auto program = vm::Assemble("p", "halt\n");
  EXPECT_EQ(os.AdmitProgram(*program).status().code(),
            StatusCode::kUnimplemented);
}

TEST(NodeOs, NetbotDockFullTransaction) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(3));
  auto driver = vm::Assemble("driver", "push 1\nhalt\n");
  Netbot bot;
  bot.module = {9, "fec-bot", SecondLevelClass::kBoosting, 8000, 5.0,
                driver->digest()};
  bot.driver_image = driver->Serialize();
  auto latency = os.DockNetbot(bot);
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  // Module installed, driver resident, speedup active.
  EXPECT_TRUE(os.code_cache().Contains(driver->digest()));
  EXPECT_DOUBLE_EQ(os.hardware().SpeedupFor(SecondLevelClass::kBoosting),
                   5.0);
}

TEST(NodeOs, NetbotNeedsGen3) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(2));
  auto driver = vm::Assemble("driver", "halt\n");
  Netbot bot;
  bot.module = {9, "bot", SecondLevelClass::kBoosting, 8000, 5.0,
                driver->digest()};
  bot.driver_image = driver->Serialize();
  EXPECT_EQ(os.DockNetbot(bot).status().code(), StatusCode::kUnimplemented);
}

TEST(NodeOs, NetbotCorruptDriverRejected) {
  NodeOs os(ResourceQuota{}, Capabilities::ForGeneration(3));
  Netbot bot;
  bot.module = {9, "bot", SecondLevelClass::kBoosting, 8000, 5.0, 0x1};
  bot.driver_image = {std::byte{0x01}, std::byte{0x02}};
  EXPECT_FALSE(os.DockNetbot(bot).ok());
}

}  // namespace
}  // namespace viator::node
