// Tier-1 tests for the sharded parallel simulation core (src/shard): shard
// planning, cross-shard transit, conservative window edge cases, and the
// headline decision-identity proof — a >=4-shard world stepped with 4
// threads makes bit-identical decisions to the same world stepped with 1,
// certified by the Flight Recorder (identical per-window hash timelines and
// a clean DivergenceAuditor diff).
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replay/auditor.h"
#include "replay/journal.h"
#include "replay/scenario.h"
#include "shard/mailbox.h"
#include "shard/plan.h"
#include "shard/sharded_network.h"
#include "telemetry/export.h"
#include "telemetry/mem_stats.h"
#include "telemetry/perf_counters.h"
#include "telemetry/shard_metrics.h"

namespace viator {
namespace {

// ---- ShardPlan --------------------------------------------------------------

TEST(ShardPlan, ContiguousBlocksPartitionEvenly) {
  net::Topology grid = net::MakeGrid(8, 8);
  Result<shard::ShardPlan> plan =
      shard::BuildShardPlan(grid, 4, shard::ContiguousBlocks(4));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->shard_count(), 4u);
  for (shard::ShardId s = 0; s < 4; ++s) {
    EXPECT_EQ(plan->members(s).size(), 16u);
  }
  // Global<->local maps round-trip, locals ascend in global order.
  for (net::NodeId node = 0; node < grid.node_count(); ++node) {
    const shard::ShardId s = plan->shard_of(node);
    EXPECT_EQ(plan->global_of(s, plan->local_of(node)), node);
  }
  EXPECT_EQ(plan->shard_of(0), 0u);
  EXPECT_EQ(plan->shard_of(63), 3u);
  // A row-major 8x8 grid cut into 2-row bands has 8 vertical cross links per
  // cut: 24 in total, and the window bound is the (uniform) link latency.
  EXPECT_EQ(plan->cross_links().size(), 24u);
  EXPECT_EQ(plan->min_cross_latency(), sim::kMillisecond);
  // Adjacent bands route directly; distant bands route through a first hop
  // toward the destination.
  EXPECT_NE(plan->RouteLink(0, 1), shard::ShardPlan::kInvalidRoute);
  const std::size_t far = plan->RouteLink(0, 3);
  ASSERT_NE(far, shard::ShardPlan::kInvalidRoute);
  const shard::CrossLink& first_hop = plan->cross_links()[far];
  EXPECT_TRUE(first_hop.shard_a == 0 || first_hop.shard_b == 0);
}

TEST(ShardPlan, RejectsInvalidAssignments) {
  net::Topology line = net::MakeLine(4);
  EXPECT_FALSE(
      shard::BuildShardPlan(line, 0, shard::ContiguousBlocks(1)).ok());
  auto out_of_range = [](net::NodeId, const net::Topology&) {
    return shard::ShardId{7};
  };
  Result<shard::ShardPlan> bad = shard::BuildShardPlan(line, 2, out_of_range);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardPlan, GatewayChoiceIsDeterministicBestLink) {
  // Two parallel cross links between the shards; the lower-latency one must
  // be the gateway regardless of insertion order.
  net::Topology topology;
  topology.AddNodes(4);
  net::LinkConfig slow;
  slow.latency = 5 * sim::kMillisecond;
  net::LinkConfig fast;
  fast.latency = 2 * sim::kMillisecond;
  topology.AddLink(0, 1, fast);
  topology.AddLink(0, 2, slow);  // cross
  topology.AddLink(1, 3, fast);  // cross
  topology.AddLink(2, 3, fast);
  auto assignment = [](net::NodeId node, const net::Topology&) {
    return static_cast<shard::ShardId>(node < 2 ? 0 : 1);
  };
  Result<shard::ShardPlan> plan = shard::BuildShardPlan(topology, 2, assignment);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->cross_links().size(), 2u);
  EXPECT_EQ(plan->min_cross_latency(), 2 * sim::kMillisecond);
  const std::size_t route = plan->RouteLink(0, 1);
  ASSERT_NE(route, shard::ShardPlan::kInvalidRoute);
  EXPECT_EQ(plan->cross_links()[route].config.latency, 2 * sim::kMillisecond);
}

// ---- Mailbox ----------------------------------------------------------------

TEST(MailboxGrid, DrainSortsByArrivalSourceSequence) {
  shard::MailboxGrid mailbox(2);
  auto make = [](sim::TimePoint at, shard::ShardId src, std::uint64_t seq) {
    shard::Handoff h;
    h.arrival_time = at;
    h.source_shard = src;
    h.sequence = seq;
    return h;
  };
  // Deposited in a scrambled order a racy run could produce.
  mailbox.Push(0, make(20, 1, 1));
  mailbox.Push(0, make(10, 2, 0));
  mailbox.Push(1, make(10, 1, 1));
  mailbox.Push(0, make(10, 1, 0));
  mailbox.Push(0, make(10, 2, 1));
  EXPECT_FALSE(mailbox.Empty());
  std::vector<shard::Handoff> batch = mailbox.DrainSorted();
  ASSERT_EQ(batch.size(), 5u);
  // Canonical total order: time, then source shard, then sequence.
  EXPECT_EQ(batch[0].source_shard, 1u);
  EXPECT_EQ(batch[0].sequence, 0u);
  EXPECT_EQ(batch[1].source_shard, 1u);
  EXPECT_EQ(batch[1].sequence, 1u);
  EXPECT_EQ(batch[2].source_shard, 2u);
  EXPECT_EQ(batch[2].sequence, 0u);
  EXPECT_EQ(batch[3].source_shard, 2u);
  EXPECT_EQ(batch[3].sequence, 1u);
  EXPECT_EQ(batch[4].arrival_time, 20u);
  EXPECT_TRUE(mailbox.Empty());
  EXPECT_EQ(mailbox.total_handoffs(), 5u);
}

// ---- Cross-shard transit ----------------------------------------------------

TEST(ShardedNetwork, DeliversAcrossShards) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  shard::ShardedNetwork world(grid, config);
  EXPECT_EQ(world.window(), sim::kMillisecond);
  ASSERT_TRUE(world.Inject(0, 15, {42}, 7).ok());  // shard 0 -> shard 1
  world.RunUntilQuiescent(100);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_GE(world.stats().CounterValue("shard.handoffs"), 1u);
  EXPECT_EQ(world.clamped_handoffs(), 0u);
}

TEST(ShardedNetwork, RoutesThroughIntermediateShards) {
  // 3 shards in a line: 0-1 | 2-3 | 4-5. A capsule from node 0 to node 5
  // must hop shard 0 -> 1 -> 2 (two boundary crossings).
  net::Topology line = net::MakeLine(6);
  shard::ShardedConfig config;
  config.shard_count = 3;
  config.threads = 1;
  shard::ShardedNetwork world(line, config);
  ASSERT_TRUE(world.Inject(0, 5, {1, 2, 3}).ok());
  world.RunUntilQuiescent(200);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_EQ(world.stats().CounterValue("shard.handoffs"), 2u);
}

TEST(ShardedNetwork, InjectRejectsUnknownNodes) {
  net::Topology line = net::MakeLine(4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  shard::ShardedNetwork world(line, config);
  EXPECT_EQ(world.Inject(0, 99, {1}).code(), StatusCode::kInvalidArgument);
}

// ---- Window edge cases ------------------------------------------------------

TEST(ShardedNetwork, ZeroLatencyCrossLinkClampsWindowToOneTick) {
  // A zero-latency cross link would collapse the conservative window to
  // nothing; the plan clamps the window to one tick and the merge defers
  // such arrivals to the boundary, counting every deferral.
  net::Topology topology;
  topology.AddNodes(2);
  net::LinkConfig instant;
  instant.latency = 0;
  topology.AddLink(0, 1, instant);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  config.assignment = [](net::NodeId node, const net::Topology&) {
    return static_cast<shard::ShardId>(node);
  };
  shard::ShardedNetwork world(topology, config);
  EXPECT_EQ(world.window(), 1u);
  ASSERT_TRUE(world.Inject(0, 1, {5}).ok());
  world.RunUntilQuiescent(16);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_GE(world.clamped_handoffs(), 1u);
}

TEST(ShardedNetwork, ToleratesEmptyShards) {
  // Shard 1 owns no nodes at all; windows must still run and cross-shard
  // traffic between shards 0 and 2 must still flow.
  net::Topology line = net::MakeLine(4);
  shard::ShardedConfig config;
  config.shard_count = 3;
  config.threads = 1;
  config.assignment = [](net::NodeId node, const net::Topology&) {
    return static_cast<shard::ShardId>(node < 2 ? 0 : 2);
  };
  shard::ShardedNetwork world(line, config);
  EXPECT_TRUE(world.plan().members(1).empty());
  ASSERT_TRUE(world.Inject(0, 3, {9}).ok());
  world.RunUntilQuiescent(100);
  EXPECT_EQ(world.Delivered(), 1u);
}

TEST(ShardedNetwork, QueueDrainingMidWindowLeavesWorldQuiescent) {
  // Intra-shard traffic finishes well inside the long window bought by a
  // slow cross link; subsequent windows dispatch nothing and quiescence
  // detection sees through the drained queues.
  net::Topology topology;
  topology.AddNodes(4);
  net::LinkConfig local;
  local.latency = sim::kMillisecond;
  net::LinkConfig cross;
  cross.latency = 10 * sim::kMillisecond;
  topology.AddLink(0, 1, local);
  topology.AddLink(2, 3, local);
  topology.AddLink(1, 2, cross);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  shard::ShardedNetwork world(topology, config);
  EXPECT_EQ(world.window(), 10 * sim::kMillisecond);
  ASSERT_TRUE(world.Inject(0, 1, {1}).ok());
  world.RunWindows(1);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_TRUE(world.IsQuiescent());
  const std::uint64_t settled = world.total_dispatched();
  EXPECT_EQ(world.RunWindows(2), 0u);
  EXPECT_EQ(world.total_dispatched(), settled);
  EXPECT_EQ(world.window_index(), 3u);
}

// ---- The decision-identity proof -------------------------------------------

/// The reference workload both thread counts execute: staged injections,
/// parallel windows, one metamorphosis pulse on every shard, more windows,
/// then a bounded drain.
void RunReferenceWorkload(shard::ShardedNetwork& world) {
  const std::uint64_t nodes = 64;
  for (std::uint64_t i = 0; i < 48; ++i) {
    ASSERT_TRUE(
        world.Inject(i % nodes, (i * 29 + 17) % nodes,
                     {static_cast<std::int64_t>(i)}, /*flow=*/i)
            .ok());
  }
  world.RunWindows(6);
  world.PulseAll();
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        world.Inject((i * 13 + 5) % nodes, (i * 41 + 2) % nodes, {7, 8}, i)
            .ok());
  }
  world.RunWindows(6);
  world.RunUntilQuiescent(256);
}

TEST(ShardedNetwork, FourThreadsDecisionIdenticalToSingleThread) {
  // The tentpole claim: 4 shards on 4 worker threads produce bit-identical
  // decisions to the same partitioned world on 1 thread — same per-window
  // hash timeline, same journal digest, and a clean DivergenceAuditor diff.
  net::Topology grid = net::MakeGrid(8, 8);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.seed = 0xabcd1234;
  config.hash_every = 1;
  config.assignment = shard::GridRowBands(8, 8, 4);

  config.threads = 1;
  shard::ShardedNetwork sequential(grid, config);
  RunReferenceWorkload(sequential);

  config.threads = 4;
  shard::ShardedNetwork parallel(grid, config);
  RunReferenceWorkload(parallel);

  EXPECT_EQ(parallel.threads(), 4u);
  EXPECT_EQ(sequential.threads(), 1u);
  EXPECT_GT(sequential.Delivered(), 0u);
  EXPECT_GT(sequential.stats().CounterValue("shard.handoffs"), 0u);

  // Identical per-window hash timelines, element by element.
  const auto& hashes_1 = sequential.journal().window_hashes();
  const auto& hashes_4 = parallel.journal().window_hashes();
  ASSERT_EQ(hashes_1.size(), hashes_4.size());
  ASSERT_GT(hashes_1.size(), 0u);
  for (std::size_t i = 0; i < hashes_1.size(); ++i) {
    EXPECT_EQ(hashes_1[i], hashes_4[i]) << "window timeline diverges at " << i;
  }

  // Identical full journals (shard hashes included) and end states.
  EXPECT_EQ(sequential.journal().total_records(),
            parallel.journal().total_records());
  EXPECT_EQ(sequential.journal().rolling_digest(),
            parallel.journal().rolling_digest());
  EXPECT_EQ(sequential.StateHash(), parallel.StateHash());
  EXPECT_EQ(sequential.Delivered(), parallel.Delivered());
  EXPECT_EQ(sequential.total_dispatched(), parallel.total_dispatched());

  // And the auditor agrees: no divergence anywhere.
  const replay::DivergenceReport report = replay::DivergenceAuditor::Compare(
      sequential.journal(), parallel.journal());
  EXPECT_FALSE(report.diverged) << report.summary;
}

TEST(ShardedNetwork, DivergenceAuditorNamesTheDivergingShard) {
  // Different seeds -> different worlds; the auditor must detect divergence
  // between their journals (the negative control for the test above).
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 1;

  shard::ShardedNetwork a(grid, config);
  config.seed = 0x9999;
  shard::ShardedNetwork b(grid, config);
  for (auto* world : {&a, &b}) {
    ASSERT_TRUE(world->Inject(0, 15, {1}).ok());
    world->RunWindows(4);
    world->PulseAll();
    world->RunWindows(4);
  }
  const replay::DivergenceReport report =
      replay::DivergenceAuditor::Compare(a.journal(), b.journal());
  EXPECT_TRUE(report.diverged);
  EXPECT_GT(report.first_divergent_step, 0u);
}

// ---- Checkpoint / restore ---------------------------------------------------

TEST(ShardedNetwork, CheckpointRestoreAtWindowBoundaryIsBitIdentical) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 2;
  config.seed = 77;

  shard::ShardedNetwork original(grid, config);
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(original.Inject(i % 16, (i * 5 + 3) % 16, {1}, i).ok());
  }
  original.RunUntilQuiescent(128);
  ASSERT_TRUE(original.IsQuiescent());
  const std::uint64_t hash_at_capture = original.StateHash();
  const std::uint64_t window_at_capture = original.window_index();
  Result<std::vector<std::byte>> checkpoint = original.CaptureCheckpoint();
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  // Continue the original past the checkpoint.
  auto continue_run = [](shard::ShardedNetwork& world) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(world.Inject((i * 3) % 16, (i * 7 + 1) % 16, {2}, i).ok());
    }
    world.RunWindows(5);
    world.RunUntilQuiescent(128);
  };
  continue_run(original);

  // Restore into a fresh shell and replay the same continuation.
  shard::ShardedNetwork restored(grid, config, /*populate=*/false);
  ASSERT_TRUE(restored.RestoreCheckpoint(*checkpoint).ok());
  EXPECT_EQ(restored.window_index(), window_at_capture);
  EXPECT_EQ(restored.StateHash(), hash_at_capture);
  continue_run(restored);

  // Bit-identical continuation: same state, same hash timeline, clean diff.
  EXPECT_EQ(restored.StateHash(), original.StateHash());
  EXPECT_EQ(restored.window_index(), original.window_index());
  EXPECT_EQ(restored.Delivered(), original.Delivered());
  EXPECT_EQ(restored.journal().rolling_digest(),
            original.journal().rolling_digest());
  const replay::DivergenceReport report = replay::DivergenceAuditor::Compare(
      original.journal(), restored.journal());
  EXPECT_FALSE(report.diverged) << report.summary;
}

TEST(ShardedNetwork, CheckpointRefusedWhileHandoffsInFlight) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  shard::ShardedNetwork world(grid, config);
  ASSERT_TRUE(world.Inject(0, 15, {1}).ok());
  // Events pending, nothing run yet: not a legal checkpoint state.
  EXPECT_FALSE(world.IsQuiescent());
  EXPECT_EQ(world.CaptureCheckpoint().status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- Telemetry --------------------------------------------------------------

TEST(ShardedNetwork, PublishesPerShardMergeMetrics) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  shard::ShardedNetwork world(grid, config);
  ASSERT_TRUE(world.Inject(0, 15, {1}).ok());
  world.RunUntilQuiescent(100);
  const sim::StatsRegistry& stats = world.stats();
  EXPECT_GT(stats.CounterValue("shard.windows"), 0u);
  EXPECT_GT(stats.CounterValue("shard.0.dispatched"), 0u);
  EXPECT_GT(stats.CounterValue("shard.0.handoffs_out"), 0u);
  EXPECT_GT(stats.CounterValue("shard.1.handoffs_in"), 0u);
  EXPECT_TRUE(stats.gauges().contains("shard.0.queue_depth"));
  EXPECT_TRUE(stats.gauges().contains("shard.count"));
}

TEST(ShardMetrics, PrometheusExportMatchesGoldenFile) {
  // Per-shard metrics through the standard Prometheus exporter, pinned to a
  // committed golden: scrape configs depend on these exact names/headers.
  sim::StatsRegistry stats;
  // Shard 0 folded deliveries this window, so its latency quantile gauges
  // appear; shard 1 did not, pinning the only-when-delivered contract (a
  // plane-off scrape never grows the namespace).
  telemetry::PublishShardWindow(stats, 0,
                                {.dispatched = 12,
                                 .handoffs_out = 3,
                                 .handoffs_in = 1,
                                 .wall_ns = 1200,
                                 .stall_ns = 450,
                                 .queue_depth = 7.0,
                                 .pool_bytes = 4096,
                                 .lat_p50_ns = 250000,
                                 .lat_p95_ns = 900000,
                                 .lat_p99_ns = 1500000,
                                 .lat_delivered = 9});
  telemetry::PublishShardWindow(stats, 1,
                                {.dispatched = 5,
                                 .handoffs_out = 1,
                                 .handoffs_in = 3,
                                 .wall_ns = 1650,
                                 .stall_ns = 0,
                                 .queue_depth = 2.0,
                                 .pool_bytes = 2048});
  stats.GetCounter("shard.windows").Add(2);
  // Memory-plane gauges under the same exporter: one domain with synthetic
  // traffic (the other domains pin their zero rows), plus fixed proc.*
  // values — the scrape-name contract for the Memory Observatory.
  std::array<telemetry::mem::Counter, telemetry::mem::kDomainCount> mem{};
  mem[static_cast<std::size_t>(telemetry::mem::Domain::kShuttlePool)] = {
      .live_bytes = 1536,
      .peak_bytes = 2560,
      .allocs = 4,
      .frees = 2,
      .alloc_bytes = 3072,
      .free_bytes = 1536};
  telemetry::PublishMemStats(stats, mem);
  telemetry::PublishProcStats(stats, /*rss_bytes=*/8 << 20,
                              /*maxrss_bytes=*/16 << 20);
  // Route-cache gauges ride the same exporter under the shard prefix. A
  // 4-node line probed twice from node 0 is one fill then one hit —
  // deterministic values forever.
  net::Topology line = net::MakeLine(4);
  ASSERT_EQ(line.NextHop(0, 3), 1u);
  ASSERT_EQ(line.NextHop(0, 2), 1u);
  net::PublishRouteCacheStats(stats, line,
                              telemetry::ShardMetricName(0, "route_cache"));
  std::ostringstream out;
  telemetry::WritePrometheusText(stats, out);

  const std::string path =
      std::string(VIATOR_GOLDEN_DIR) + "/shard_prometheus.txt";
  if (std::getenv("VIATOR_REGEN_GOLDEN") != nullptr) {
    std::ofstream(path) << out.str();  // deliberate golden refresh
  }
  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing tests/golden/shard_prometheus.txt";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

TEST(ShardTimeline, PerfettoExportMatchesGoldenFile) {
  // The Perfetto trace_event shape — thread-name metadata, window/barrier
  // slices, per-shard mem.pool_bytes and lat.delivery_ns counter tracks
  // ("ph":"C") — is contract output (ui.perfetto.dev and scripts parse it),
  // so it is pinned to a committed golden built from hand-authored
  // deterministic records.
  telemetry::ShardObservatory observatory(2);
  telemetry::ShardWindowRecord w0;
  w0.window_index = 0;
  w0.virtual_start = 0;
  w0.virtual_end = 1000;
  w0.merge_wall_ns = 300;
  w0.merge_handoffs = 2;
  w0.shards = {{.dispatched = 12,
                .handoffs_out = 2,
                .handoffs_in = 0,
                .wall_ns = 1500,
                .start_ns = 100,
                .stall_ns = 0,
                .queue_depth = 3.0,
                .pool_bytes = 4096,
                .lat_p50_ns = 250000,
                .lat_p95_ns = 900000,
                .lat_p99_ns = 1500000,
                .lat_delivered = 9},
               {.dispatched = 4,
                .handoffs_out = 0,
                .handoffs_in = 2,
                .wall_ns = 700,
                .start_ns = 200,
                .stall_ns = 700,
                .queue_depth = 1.0,
                .pool_bytes = 2048}};
  observatory.RecordWindow(w0);
  telemetry::ShardWindowRecord w1;
  w1.window_index = 1;
  w1.virtual_start = 1000;
  w1.virtual_end = 2000;
  w1.merge_wall_ns = 250;
  w1.merge_handoffs = 0;
  w1.shards = {{.dispatched = 6,
                .wall_ns = 900,
                .stall_ns = 100,
                .pool_bytes = 4096},
               {.dispatched = 8, .wall_ns = 1000, .pool_bytes = 6144}};
  observatory.RecordWindow(w1);

  std::ostringstream out;
  telemetry::WriteShardTimelineJson(observatory, out);

  const std::string path =
      std::string(VIATOR_GOLDEN_DIR) + "/shard_timeline.json";
  if (std::getenv("VIATOR_REGEN_GOLDEN") != nullptr) {
    std::ofstream(path) << out.str();  // deliberate golden refresh
  }
  std::ifstream golden(path);
  ASSERT_TRUE(golden.is_open()) << "missing tests/golden/shard_timeline.json";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(out.str(), expected.str());
}

// ---- Degenerate executor configurations ------------------------------------

TEST(ShardedNetwork, MoreThreadsThanShardsIsHarmless) {
  // 8 worker threads over 2 shards: the surplus threads must idle cleanly
  // (no deadlock, no stalled barrier) and the decisions must still match
  // the single-thread reference.
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.hash_every = 1;

  config.threads = 1;
  shard::ShardedNetwork reference(grid, config);
  config.threads = 8;
  shard::ShardedNetwork oversubscribed(grid, config);
  for (auto* world : {&reference, &oversubscribed}) {
    ASSERT_TRUE(world->Inject(0, 15, {1}, 1).ok());
    world->RunUntilQuiescent(64);
  }
  EXPECT_EQ(oversubscribed.Delivered(), 1u);
  EXPECT_EQ(oversubscribed.StateHash(), reference.StateHash());
  EXPECT_EQ(oversubscribed.journal().rolling_digest(),
            reference.journal().rolling_digest());
}

TEST(ShardedNetwork, SingleShardPlanRunsAndReportsBalanced) {
  // One shard means no cross links, the default window length, no handoffs
  // — and an imbalance index of exactly 1.0 (a single shard cannot be
  // imbalanced against itself).
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 1;
  config.threads = 2;
  shard::ShardedNetwork world(grid, config);
  EXPECT_EQ(world.window(), config.default_window);
  ASSERT_TRUE(world.Inject(0, 15, {1}).ok());
  world.RunUntilQuiescent(64);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_EQ(world.stats().CounterValue("shard.handoffs"), 0u);
  const telemetry::StragglerReport report = world.observatory().Report();
  EXPECT_EQ(report.shard_count, 1u);
  EXPECT_DOUBLE_EQ(report.imbalance_events, 1.0);
  EXPECT_EQ(report.hot_shard_by_events, 0u);
}

TEST(ShardedNetwork, ZeroEventWindowsReportCleanRatios) {
  // Windows with nothing to dispatch must not stall and must never produce
  // NaN in the observatory's ratios (zero-denominator contract).
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 2;
  shard::ShardedNetwork world(grid, config);
  EXPECT_EQ(world.RunWindows(8), 0u);
  EXPECT_EQ(world.window_index(), 8u);
  const telemetry::StragglerReport report = world.observatory().Report();
  EXPECT_EQ(report.windows, 8u);
  EXPECT_DOUBLE_EQ(report.imbalance_events, 1.0);
  EXPECT_FALSE(std::isnan(report.imbalance_wall));
  EXPECT_FALSE(std::isnan(report.barrier_stall_ratio));
  EXPECT_FALSE(std::isnan(report.critical_path_ratio));
  EXPECT_GE(report.barrier_stall_ratio, 0.0);
  EXPECT_LE(report.barrier_stall_ratio, 1.0);
}

// ---- Shard Observatory ------------------------------------------------------

TEST(ShardObservatory, StragglerReportNamesDeliberatelyHotShard) {
  // All traffic confined to the second row band: the observatory must name
  // shard 1 as hot by events and report a clearly unbalanced index.
  net::Topology grid = net::MakeGrid(8, 8);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 2;
  config.assignment = shard::GridRowBands(8, 8, 4);
  shard::ShardedNetwork world(grid, config);
  // Band 1 owns rows 2-3 = nodes 16..31.
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(world.Inject(16 + i % 16, 16 + (i * 7 + 3) % 16, {1}, i).ok());
  }
  world.RunUntilQuiescent(128);
  const telemetry::StragglerReport report = world.observatory().Report();
  EXPECT_EQ(report.hot_shard_by_events, 1u);
  EXPECT_GT(report.imbalance_events, 1.5);
  const std::string text = report.Format();
  EXPECT_NE(text.find("<- hot (events)"), std::string::npos);
  EXPECT_NE(text.find("straggler: shard 1 by events"), std::string::npos);
  // Observatory gauges ride the standard stats registry.
  EXPECT_TRUE(world.stats().gauges().contains("shard.imbalance_events"));
  EXPECT_TRUE(world.stats().gauges().contains("shard.barrier_stall_ratio"));
  EXPECT_TRUE(world.stats().gauges().contains("shard.straggler"));
}

TEST(ShardObservatory, WindowCapacityBoundsRetentionNotTotals) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  config.observatory_window_capacity = 3;
  shard::ShardedNetwork world(grid, config);
  ASSERT_TRUE(world.Inject(0, 15, {1}).ok());
  world.RunWindows(10);
  const telemetry::ShardObservatory& obs = world.observatory();
  EXPECT_EQ(obs.windows_seen(), 10u);
  EXPECT_EQ(obs.windows().size(), 3u);   // retention bounded...
  EXPECT_EQ(obs.windows_dropped(), 7u);
  EXPECT_EQ(obs.Report().windows, 10u);  // ...totals still see every window
}

TEST(ShardObservatory, DisabledObservatoryRecordsNothing) {
  net::Topology grid = net::MakeGrid(4, 4);
  shard::ShardedConfig config;
  config.shard_count = 2;
  config.threads = 1;
  config.observatory = false;
  shard::ShardedNetwork world(grid, config);
  ASSERT_TRUE(world.Inject(0, 15, {1}).ok());
  world.RunUntilQuiescent(64);
  EXPECT_EQ(world.Delivered(), 1u);
  EXPECT_EQ(world.observatory().windows_seen(), 0u);
  // The per-shard stats counters still publish regardless.
  EXPECT_GT(world.stats().CounterValue("shard.0.dispatched"), 0u);
}

TEST(ShardObservatory, CountersAreReplayNeutral) {
  // The perf plane observes, it must not steer: the same world with perf
  // counters enabled and disabled produces identical journals and hashes.
  net::Topology grid = net::MakeGrid(8, 8);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 4;
  config.hash_every = 1;
  config.assignment = shard::GridRowBands(8, 8, 4);

  telemetry::perf::ResetAll();
  telemetry::perf::SetEnabled(false);
  shard::ShardedNetwork quiet(grid, config);
  RunReferenceWorkload(quiet);

  telemetry::perf::SetEnabled(true);
  shard::ShardedNetwork counted(grid, config);
  RunReferenceWorkload(counted);
  telemetry::perf::SetEnabled(false);

  EXPECT_EQ(quiet.journal().rolling_digest(),
            counted.journal().rolling_digest());
  EXPECT_EQ(quiet.StateHash(), counted.StateHash());
  ASSERT_EQ(quiet.journal().window_hashes().size(),
            counted.journal().window_hashes().size());
  // And the counted run actually counted something.
  const auto aggregate = telemetry::perf::Aggregate();
  using telemetry::perf::Metric;
  EXPECT_GT(aggregate[static_cast<std::size_t>(Metric::kSimDispatch)].calls,
            0u);
  EXPECT_GT(aggregate[static_cast<std::size_t>(Metric::kExecutorWindow)].calls,
            0u);
  EXPECT_GT(aggregate[static_cast<std::size_t>(Metric::kMergeWindow)].calls,
            0u);
  // threads=4 takes the pooled path, so the barrier probe must have fired
  // (the sequential reference path never waits on the barrier).
  EXPECT_GT(aggregate[static_cast<std::size_t>(Metric::kBarrierWait)].calls,
            0u);
  telemetry::perf::ResetAll();
}

TEST(PerfCounters, ResetPerScenario) {
  // Regression test for the scenario-bleed bug: perf counters accumulated
  // across successive ReplayWorld scenarios in one process, so the second
  // scenario's report included the first's probe counts. Constructing a
  // populated ReplayWorld must reset the process-wide blocks.
  telemetry::perf::ResetAll();
  telemetry::perf::SetEnabled(true);
  replay::ScenarioConfig scenario;
  scenario.rows = 4;
  scenario.cols = 4;
  scenario.injections_per_step = 4;
  {
    replay::ReplayWorld world(scenario);
    world.RunToStep(3);
  }
  telemetry::perf::SetEnabled(false);
  using telemetry::perf::Metric;
  const auto first = telemetry::perf::Aggregate();
  EXPECT_GT(first[static_cast<std::size_t>(Metric::kRngDraw)].calls, 0u);

  // The second scenario starts from zero, not from the first's counts.
  replay::ReplayWorld fresh(scenario);
  const auto after = telemetry::perf::Aggregate();
  EXPECT_EQ(after[static_cast<std::size_t>(Metric::kRngDraw)].calls, 0u);
  EXPECT_EQ(after[static_cast<std::size_t>(Metric::kSimDispatch)].calls, 0u);
}

// ---- Parallel speedup smoke -------------------------------------------------

TEST(ShardedNetwork, ParallelSpeedupSmoke) {
  // The real speedup gate lives in bench_micro_substrate (256x256 grid,
  // thread sweep); this smoke test only engages on >=4-core machines when
  // explicitly requested, because wall-clock ratios are meaningless on the
  // 1-core and oversubscribed runners that also execute this suite.
  if (std::thread::hardware_concurrency() < 4 ||
      std::getenv("VIATOR_REQUIRE_SPEEDUP") == nullptr) {
    GTEST_SKIP() << "needs >=4 cores and VIATOR_REQUIRE_SPEEDUP=1";
  }
  net::Topology grid = net::MakeGrid(32, 32);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.hash_every = 0;  // raw-speed setting
  config.assignment = shard::GridRowBands(32, 32, 4);

  auto run = [&grid, &config](std::size_t threads) {
    config.threads = threads;
    shard::ShardedNetwork world(grid, config);
    for (std::uint64_t i = 0; i < 2048; ++i) {
      EXPECT_TRUE(
          world.Inject(i % 1024, (i * 37 + 11) % 1024, {1}, i).ok());
    }
    const auto start = std::chrono::steady_clock::now();
    world.RunWindows(40);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double>(elapsed).count();
  };
  const double serial = run(1);
  const double parallel = run(4);
  EXPECT_GT(serial / parallel, 1.3) << "serial " << serial << "s, parallel "
                                    << parallel << "s";
}

}  // namespace
}  // namespace viator
