// The compiled-out half of the memory-counter cost contract
// (docs/MEMORY.md): this translation unit is built with
// -DVIATOR_MEM_COUNTERS=0 (see tests/CMakeLists.txt), so the probe macros
// must expand to nothing at all — no probe can fire even with the runtime
// switch forced on, the macros must still parse everywhere a statement can
// appear, and ChargedBytes must keep its deterministic local balance while
// mirroring nothing into the global registry.
#include <cstddef>

#include <gtest/gtest.h>

#include "telemetry/mem_counters.h"

#if VIATOR_MEM_COUNTERS
#error "this test must be compiled with -DVIATOR_MEM_COUNTERS=0"
#endif

namespace viator {
namespace {

std::size_t InstrumentedWork(std::size_t n) {
  VIATOR_MEM_ALLOC(kShuttlePool, n * 64);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    VIATOR_MEM_RESIZE(kCalendarQueue, i, i + 1);
    acc += i * 2654435761u;
  }
  if (n > 0) VIATOR_MEM_FREE(kShuttlePool, n * 64);  // statement position
  return acc;
}

TEST(MemCompiledOut, NoProbeFiresEvenWithRuntimeSwitchOn) {
  telemetry::mem::ResetAll();
  telemetry::mem::SetEnabled(true);
  EXPECT_NE(InstrumentedWork(1000), 0u);

  // ChargedBytes keeps its instance balance (the deterministic accessors
  // the shard timeline and genesis sections read) but never touches the
  // global counters in this build.
  {
    telemetry::mem::ChargedBytes<telemetry::mem::Domain::kRouteCache> charge;
    charge.Add(4096);
    EXPECT_EQ(charge.value(), 4096u);
    charge.Set(1024);
    EXPECT_EQ(charge.value(), 1024u);
  }
  telemetry::mem::SetEnabled(false);

  const auto aggregate = telemetry::mem::Aggregate();
  for (std::size_t i = 0; i < telemetry::mem::kDomainCount; ++i) {
    EXPECT_EQ(aggregate[i].allocs, 0u) << telemetry::mem::DomainName(
        static_cast<telemetry::mem::Domain>(i));
    EXPECT_EQ(aggregate[i].frees, 0u);
    EXPECT_EQ(aggregate[i].live_bytes, 0);
    EXPECT_EQ(aggregate[i].peak_bytes, 0);
  }
}

}  // namespace
}  // namespace viator
