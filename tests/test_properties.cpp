// Property-based and fuzz tests over the safety-critical boundaries:
// the verifier/interpreter contract, the TLV/genome codecs on hostile
// bytes, fabric conservation laws, and a full-system soak.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/tlv.h"
#include "core/genetic_transcoder.h"
#include "core/knowledge.h"
#include "core/wandering_network.h"
#include "core/wanderlib.h"
#include "net/failure.h"
#include "net/topology.h"
#include "services/audit.h"
#include "services/gossip.h"
#include "services/security_mgmt.h"
#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/verifier.h"

namespace viator {
namespace {

// ---- VM: verified programs can never hurt the host ----

// Generates a random (usually invalid) instruction stream.
vm::Program RandomProgram(Rng& rng, std::size_t length) {
  std::vector<vm::Instruction> code;
  code.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    vm::Instruction ins;
    ins.opcode = static_cast<vm::Opcode>(
        rng.Index(static_cast<std::size_t>(vm::Opcode::kOpcodeCount)));
    switch (rng.Index(4)) {
      case 0:
        ins.operand = static_cast<std::int32_t>(rng.Index(length + 2));
        break;
      case 1:
        ins.operand = static_cast<std::int32_t>(rng.Index(40));
        break;
      case 2:
        ins.operand = static_cast<std::int32_t>(rng.UniformInt(0, 1 << 16));
        break;
      default:
        ins.operand = -static_cast<std::int32_t>(rng.Index(100));
        break;
    }
    code.push_back(ins);
  }
  std::vector<std::int64_t> constants;
  for (std::size_t i = 0; i < rng.Index(4) + 1; ++i) {
    constants.push_back(static_cast<std::int64_t>(rng.Next()));
  }
  return vm::Program("fuzz", std::move(code), std::move(constants));
}

class VmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmFuzz, VerifiedProgramsNeverFaultExceptCallDepth) {
  Rng rng(GetParam());
  vm::Interpreter interpreter;
  vm::Environment env;
  int verified_count = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto program = RandomProgram(rng, rng.Index(24) + 1);
    const auto verdict = vm::Verify(program);
    if (!verdict.ok()) continue;  // rejected: nothing to check
    ++verified_count;
    const auto result = interpreter.Run(program, env, /*fuel=*/20000);
    if (result.reason == vm::ExitReason::kFault) {
      // The only dynamic fault a verified program may produce is exceeding
      // the call-depth bound (a liveness resource, like fuel).
      EXPECT_NE(result.fault_message.find("call depth"), std::string::npos)
          << "verified program faulted: " << result.fault_message << "\n"
          << vm::Disassemble(program);
    }
  }
  // The generator must actually exercise the accept path.
  EXPECT_GT(verified_count, 10);
}

TEST_P(VmFuzz, UnverifiedProgramsNeverCrashTheInterpreter) {
  // Even rejected programs, run directly, must fail *gracefully* (fault /
  // fuel), never crash or hang: the interpreter is the last line of
  // defense.
  Rng rng(GetParam() ^ 0x1234);
  vm::Interpreter interpreter;
  vm::Environment env;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto program = RandomProgram(rng, rng.Index(24) + 1);
    const auto result = interpreter.Run(program, env, /*fuel=*/5000);
    EXPECT_LE(result.fuel_used, 5000u);
  }
}

TEST_P(VmFuzz, InterpreterIsDeterministic) {
  Rng rng(GetParam() * 7 + 5);
  vm::Interpreter interpreter;
  vm::Environment env;
  for (int trial = 0; trial < 300; ++trial) {
    const auto program = RandomProgram(rng, rng.Index(16) + 1);
    const auto a = interpreter.Run(program, env, 3000);
    const auto b = interpreter.Run(program, env, 3000);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.fuel_used, b.fuel_used);
    EXPECT_EQ(a.top_of_stack, b.top_of_stack);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz,
                         ::testing::Values(1ull, 42ull, 2026ull, 777ull));

// ---- Serialization: hostile bytes never crash, valid bytes round trip ----

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, TlvReaderSurvivesRandomBytes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> bytes(rng.Index(128));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.Next() & 0xff);
    TlvReader reader(bytes);
    (void)reader.Verify();
    int guard = 0;
    while (reader.HasNext() && guard++ < 1000) {
      if (!reader.Next().ok()) break;
    }
  }
}

TEST_P(CodecFuzz, GenomeDecoderSurvivesRandomBytes) {
  Rng rng(GetParam() + 9);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> bytes(rng.Index(160));
    for (auto& b : bytes) b = static_cast<std::byte>(rng.Next() & 0xff);
    (void)wli::DecodeBlueprint(bytes);
    (void)wli::DecodeKnowledgeQuantum(bytes);
    (void)vm::Program::Deserialize(bytes);
  }
}

TEST_P(CodecFuzz, RandomBlueprintsRoundTrip) {
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 300; ++trial) {
    wli::ShipBlueprint bp;
    bp.ship_class = static_cast<node::ShipClass>(rng.Index(3));
    bp.role = static_cast<node::FirstLevelRole>(
        rng.Index(static_cast<std::size_t>(node::FirstLevelRole::kRoleCount)));
    bp.next_step = static_cast<node::FirstLevelRole>(
        rng.Index(static_cast<std::size_t>(node::FirstLevelRole::kRoleCount)));
    for (std::size_t i = 0; i < rng.Index(6); ++i) {
      bp.resident_programs.push_back(rng.Next());
      bp.facts.push_back({rng.Next(), static_cast<std::int64_t>(rng.Next()),
                          rng.Uniform(0.1, 10.0)});
    }
    const auto genome = wli::EncodeBlueprint(bp);
    auto decoded = wli::DecodeBlueprint(genome);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->role, bp.role);
    EXPECT_EQ(decoded->resident_programs, bp.resident_programs);
    ASSERT_EQ(decoded->facts.size(), bp.facts.size());
    for (std::size_t i = 0; i < bp.facts.size(); ++i) {
      EXPECT_EQ(decoded->facts[i].key, bp.facts[i].key);
      EXPECT_DOUBLE_EQ(decoded->facts[i].weight, bp.facts[i].weight);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(3ull, 99ull, 123456ull));

// ---- Fabric conservation ----

class FabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricProperty, FramesAreConserved) {
  // Every accepted frame is eventually delivered or accounted as lost;
  // none duplicate, none vanish.
  sim::Simulator simulator;
  Rng rng(GetParam());
  net::Topology topology = net::MakeRandom(12, 0.25, rng);
  // Randomize lossiness.
  sim::StatsRegistry stats;
  net::Fabric fabric(simulator, topology, rng.Fork(), stats);
  std::uint64_t delivered = 0;
  for (net::NodeId n = 0; n < 12; ++n) {
    fabric.SetReceiveHandler(n, [&](const net::Frame&) { ++delivered; });
  }
  std::uint64_t accepted = 0;
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<net::NodeId>(rng.Index(12));
    const auto neighbors = topology.Neighbors(a);
    if (neighbors.empty()) continue;
    net::Frame frame;
    frame.from = a;
    frame.to = neighbors[rng.Index(neighbors.size())];
    frame.size_bytes = static_cast<std::uint32_t>(rng.UniformInt(32, 2048));
    if (fabric.Send(std::move(frame)).ok()) ++accepted;
  }
  simulator.RunAll();
  const std::uint64_t lost = stats.CounterValue("fabric.frames_lost");
  EXPECT_EQ(delivered + lost, accepted);
  EXPECT_EQ(fabric.frames_delivered(), delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricProperty,
                         ::testing::Values(5ull, 17ull, 81ull, 2025ull));

// ---- Topology invariants ----

class TopologyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyProperty, NeighborsAreSymmetric) {
  Rng rng(GetParam());
  net::Topology topology = net::MakeScaleFree(60, 2, rng);
  for (net::NodeId a = 0; a < 60; ++a) {
    for (net::NodeId b : topology.Neighbors(a)) {
      const auto back = topology.Neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST_P(TopologyProperty, ShortestPathsAreValidWalks) {
  Rng rng(GetParam() + 3);
  net::Topology topology = net::MakeRandom(30, 0.15, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<net::NodeId>(rng.Index(30));
    const auto b = static_cast<net::NodeId>(rng.Index(30));
    const auto path = topology.ShortestPath(a, b);
    if (path.empty()) continue;
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(topology.FindLink(path[i], path[i + 1]).has_value());
    }
    // Hop-optimality vs the latency-weighted path: hop count of the
    // shortest path is a lower bound for any other path's hop count only
    // if we compare like with like; here we just require both to connect.
    EXPECT_FALSE(topology.FastestPath(a, b).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperty,
                         ::testing::Values(7ull, 29ull, 404ull));

// ---- Full-system soak ----

TEST(Soak, EverythingOnTwentySimulatedSeconds) {
  // 48 ships, pulse + gossip + audit + workload monitor + random failures +
  // jets + demand-loaded shuttle code, 20 simulated seconds. The test is
  // the absence of crashes plus global invariants at the end.
  sim::Simulator simulator;
  Rng rng(20260705);
  net::Topology topology = net::MakeRandom(48, 0.1, rng);
  wli::WnConfig config;
  config.pulse_interval = 200 * sim::kMillisecond;
  config.auth_key = 0x5eaf00d;
  wli::WanderingNetwork wn(simulator, topology, config, 20260705);
  wn.PopulateAllNodes();
  wn.ship(13)->set_honest(false);

  // Functions spread around.
  for (int i = 0; i < 10; ++i) {
    wli::NetFunction fn;
    fn.name = "soak-" + std::to_string(i);
    fn.role = static_cast<node::FirstLevelRole>(
        i % static_cast<int>(node::FirstLevelRole::kRoleCount));
    wn.DeployFunction(static_cast<net::NodeId>(rng.Index(48)), fn);
  }

  // Services.
  services::GossipService gossip(wn, {}, rng.Fork());
  services::AuditService audit(wn, {}, rng.Fork());
  services::WorkloadMonitor monitor(wn, 250 * sim::kMillisecond);
  services::SelfHealingCoordinator healer(
      wn, {.detection_delay = 100 * sim::kMillisecond});
  healer.CheckpointAll();
  net::FailureInjector injector(simulator, topology, rng.Fork());
  injector.set_observer([&](const char* kind, std::uint32_t id, bool up) {
    healer.OnFailureEvent(kind, id, up);
  });

  const sim::TimePoint horizon = 20 * sim::kSecond;
  gossip.Start(horizon);
  audit.Start(horizon);
  monitor.Start(horizon);
  wn.StartPulse(horizon);
  injector.StartRandomLinkFailures(8 * sim::kSecond, 2 * sim::kSecond,
                                   horizon);
  injector.FailNode(5, 6 * sim::kSecond, 4 * sim::kSecond);

  // Traffic: plain data, demand-loaded code, knowledge and jets.
  auto census = wli::wanderlib::NeighborCensus(31337);
  ASSERT_TRUE(wn.PublishProgram(*census, 0).ok());
  Rng traffic = rng.Fork();
  for (sim::TimePoint t = 0; t < horizon; t += 50 * sim::kMillisecond) {
    simulator.ScheduleAt(t, [&wn, &traffic, census_digest = census->digest()] {
      const auto src = static_cast<net::NodeId>(traffic.Index(48));
      const auto dst = static_cast<net::NodeId>(traffic.Index(48));
      if (src == dst) return;
      wli::Shuttle s = wli::Shuttle::Data(src, dst,
                                          {static_cast<std::int64_t>(
                                              traffic.Next() >> 1)},
                                          traffic.UniformInt(1, 8));
      if (traffic.Bernoulli(0.3)) s.code_digest = census_digest;
      if (traffic.Bernoulli(0.05)) {
        s.header.kind = wli::ShuttleKind::kJet;
        s.code_digest = census_digest;
        s.replication_budget = 3;
      }
      (void)wn.Inject(std::move(s));
    });
  }

  simulator.RunUntil(horizon);
  simulator.RunAll();

  // Invariants.
  EXPECT_GT(wn.fabric().frames_delivered(), 0u);
  // Fabric conservation: sent = delivered + dropped-by-fabric (in any form).
  EXPECT_EQ(wn.stats().CounterValue("fabric.frames_sent"),
            wn.fabric().frames_delivered() +
                wn.stats().CounterValue("fabric.frames_lost") +
                wn.stats().CounterValue("fabric.drop_queue"));
  // The dishonest ship was caught.
  EXPECT_TRUE(wn.reputation().IsExcluded(13));
  // Every placement points at an existing ship hosting the function.
  for (const auto& [fn, host] : wn.placements()) {
    ASSERT_NE(wn.ship(host), nullptr);
    EXPECT_NE(wn.ship(host)->functions().Find(fn), nullptr);
  }
  // Pulses ran and things happened.
  EXPECT_GE(wn.pulses(), 90u);
  EXPECT_GT(gossip.shuttles_sent(), 0u);
  EXPECT_GT(audit.audits(), 0u);
  // The soak must not have leaked pending events beyond the horizon's tail.
  EXPECT_EQ(simulator.PendingEvents(), 0u);
}

}  // namespace
}  // namespace viator
