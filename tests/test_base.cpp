// Unit tests for the base library: status/result, hashing, RNG, TLV codec
// and string/table helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/flat_map.h"
#include "base/hash.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/tlv.h"

namespace viator {
namespace {

// ---- Status / Result ----

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFound("a"), NotFound("b"));
  EXPECT_FALSE(NotFound("a") == InvalidArgument("a"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// ---- Hashing ----

TEST(Hash, DeterministicAndContentSensitive) {
  EXPECT_EQ(HashString("viator"), HashString("viator"));
  EXPECT_NE(HashString("viator"), HashString("viatob"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(Hash, EmptyInputIsOffsetBasis) {
  EXPECT_EQ(HashBytes({}), kFnvOffsetBasis);
}

TEST(Hash, CombineChains) {
  const auto full = HashString("hello world");
  auto partial = HashCombine(kFnvOffsetBasis,
                             std::as_bytes(std::span("hello ", 6)));
  partial = HashCombine(partial, std::as_bytes(std::span("world", 5)));
  EXPECT_EQ(full, partial);
}

TEST(Hash, HexIsFixedWidth) {
  EXPECT_EQ(DigestToHex(0).size(), 16u);
  EXPECT_EQ(DigestToHex(0), "0000000000000000");
  EXPECT_EQ(DigestToHex(0xdeadbeefULL), "00000000deadbeef");
}

TEST(Hash, KeyedTagDependsOnKey) {
  const auto data = std::as_bytes(std::span("payload", 7));
  EXPECT_NE(KeyedTag(1, data), KeyedTag(2, data));
  EXPECT_EQ(KeyedTag(1, data), KeyedTag(1, data));
}

TEST(Hash, KeyedTagDiffersFromPlainHash) {
  const auto data = std::as_bytes(std::span("payload", 7));
  EXPECT_NE(KeyedTag(0x1234, data), HashBytes(data));
}

// ---- RNG ----

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(7);
  Rng child = parent.Fork();
  // Child and parent streams should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.Next() == child.Next();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 1.5);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Zipf(7, 0.8), 7u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.Permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

// ---- TLV ----

TEST(Tlv, RoundTripsScalars) {
  TlvWriter w;
  w.PutU64(1, 0xabcdef0123456789ULL);
  w.PutU32(2, 77);
  w.PutDouble(3, 3.25);
  w.PutString(4, "genome");
  const auto bytes = w.Finish();

  TlvReader r(bytes);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->tag, 1);
  EXPECT_EQ(rec->AsU64(), 0xabcdef0123456789ULL);
  rec = r.Next();
  EXPECT_EQ(rec->AsU32(), 77u);
  rec = r.Next();
  EXPECT_DOUBLE_EQ(rec->AsDouble(), 3.25);
  rec = r.Next();
  EXPECT_EQ(rec->AsString(), "genome");
  EXPECT_FALSE(r.HasNext());
}

TEST(Tlv, DetectsCorruption) {
  TlvWriter w;
  w.PutString(1, "important data");
  auto bytes = w.Finish();
  bytes[8] ^= std::byte{0xff};
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
}

TEST(Tlv, DetectsTruncation) {
  TlvWriter w;
  w.PutU64(1, 5);
  auto bytes = w.Finish();
  bytes.resize(bytes.size() - 3);
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
}

TEST(Tlv, EmptyStreamFailsVerify) {
  TlvReader r({});
  EXPECT_FALSE(r.Verify().ok());
}

TEST(Tlv, NestedStreams) {
  TlvWriter inner;
  inner.PutU32(10, 123);
  const auto inner_bytes = inner.Finish();

  TlvWriter outer;
  outer.PutNested(20, inner_bytes);
  const auto outer_bytes = outer.Finish();

  TlvReader r(outer_bytes);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  TlvReader nested(rec->payload);
  ASSERT_TRUE(nested.Verify().ok());
  auto inner_rec = nested.Next();
  ASSERT_TRUE(inner_rec.ok());
  EXPECT_EQ(inner_rec->AsU32(), 123u);
}

TEST(Tlv, RewindRestartsIteration) {
  TlvWriter w;
  w.PutU32(1, 1);
  w.PutU32(2, 2);
  const auto bytes = w.Finish();
  TlvReader r(bytes);
  ASSERT_TRUE(r.Next().ok());
  ASSERT_TRUE(r.Next().ok());
  EXPECT_FALSE(r.HasNext());
  r.Rewind();
  EXPECT_TRUE(r.HasNext());
}

TEST(Tlv, WrongTypeWidthYieldsZero) {
  TlvWriter w;
  w.PutString(1, "abc");
  const auto bytes = w.Finish();
  TlvReader r(bytes);
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->AsU64(), 0u);  // 3-byte payload is not a u64
}

// ---- Nested-record bounds and checksum coverage ----

namespace {

// Hand-crafts a raw record header (2-byte tag, 4-byte length, little endian)
// so tests can build frames the writer refuses to produce.
void AppendRawHeader(std::vector<std::byte>& out, TlvTag tag,
                     std::uint32_t length) {
  out.push_back(static_cast<std::byte>(tag & 0xff));
  out.push_back(static_cast<std::byte>(tag >> 8));
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((length >> (8 * i)) & 0xff));
  }
}

}  // namespace

TEST(TlvNested, InnerCorruptionIsCaughtByInnerChecksum) {
  TlvWriter inner;
  inner.PutString(1, "nested genome");
  auto inner_bytes = inner.Finish();
  inner_bytes[9] ^= std::byte{0x01};  // corrupt before embedding

  TlvWriter outer;
  outer.PutNested(2, inner_bytes);
  const auto outer_bytes = outer.Finish();

  // The outer checksum covers the (already corrupt) embedded bytes, so only
  // the inner stream's own trailer can catch the damage.
  TlvReader r(outer_bytes);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  TlvReader nested(rec->payload);
  EXPECT_FALSE(nested.Verify().ok());
}

TEST(TlvNested, InnerTruncationIsCaughtByInnerChecksum) {
  TlvWriter inner;
  inner.PutU64(1, 42);
  auto inner_bytes = inner.Finish();
  inner_bytes.resize(inner_bytes.size() - 5);

  TlvWriter outer;
  outer.PutNested(2, inner_bytes);
  const auto outer_bytes = outer.Finish();

  TlvReader r(outer_bytes);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  TlvReader nested(rec->payload);
  EXPECT_FALSE(nested.Verify().ok());
}

TEST(TlvNested, DeepNestingRoundTrips) {
  TlvWriter leaf;
  leaf.PutU32(1, 0xbeef);
  auto bytes = leaf.Finish();
  for (int depth = 0; depth < 8; ++depth) {
    TlvWriter wrap;
    wrap.PutNested(static_cast<TlvTag>(100 + depth), bytes);
    bytes = wrap.Finish();
  }

  std::span<const std::byte> view = bytes;
  std::vector<std::vector<std::byte>> keep_alive;  // spans borrow from these
  for (int depth = 7; depth >= 0; --depth) {
    TlvReader r(view);
    ASSERT_TRUE(r.Verify().ok()) << "depth " << depth;
    auto rec = r.Next();
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->tag, static_cast<TlvTag>(100 + depth));
    keep_alive.emplace_back(rec->payload.begin(), rec->payload.end());
    view = keep_alive.back();
  }
  TlvReader r(view);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->AsU32(), 0xbeefu);
}

TEST(TlvNested, LengthBeyondBufferIsRejected) {
  // A record claiming 100 payload bytes with only 4 present must fail both
  // verification and iteration — never read out of bounds.
  std::vector<std::byte> bytes;
  AppendRawHeader(bytes, 7, 100);
  for (int i = 0; i < 4; ++i) bytes.push_back(std::byte{0xaa});
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
  EXPECT_FALSE(r.Next().ok());
}

TEST(TlvNested, MaximalLengthFieldIsRejected) {
  std::vector<std::byte> bytes;
  AppendRawHeader(bytes, 7, 0xffffffffu);
  bytes.push_back(std::byte{0x00});
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
  EXPECT_FALSE(r.Next().ok());
}

TEST(TlvNested, BytesAfterChecksumTrailerAreRejected) {
  TlvWriter w;
  w.PutU32(1, 9);
  auto bytes = w.Finish();
  bytes.push_back(std::byte{0x00});
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
}

TEST(TlvNested, MalformedChecksumTrailerLengthIsRejected) {
  // A trailer whose declared length is not 8 is malformed even if the bytes
  // that follow happen to be in bounds.
  std::vector<std::byte> bytes;
  AppendRawHeader(bytes, kTlvChecksumTag, 4);
  for (int i = 0; i < 4; ++i) bytes.push_back(std::byte{0x00});
  TlvReader r(bytes);
  EXPECT_FALSE(r.Verify().ok());
}

TEST(TlvNested, EmptyNestedPayloadFailsInnerVerify) {
  TlvWriter outer;
  outer.PutNested(3, {});
  const auto bytes = outer.Finish();
  TlvReader r(bytes);
  ASSERT_TRUE(r.Verify().ok());
  auto rec = r.Next();
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->payload.empty());
  TlvReader nested(rec->payload);
  EXPECT_FALSE(nested.Verify().ok());  // no trailer in an empty stream
}

// Property sweep: serialize/parse round trip across sizes.
class TlvRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TlvRoundTrip, ManyRecords) {
  const int n = GetParam();
  TlvWriter w;
  for (int i = 0; i < n; ++i) {
    w.PutU64(static_cast<TlvTag>(i % 100), static_cast<std::uint64_t>(i));
  }
  const auto bytes = w.Finish();
  TlvReader r(bytes);
  ASSERT_TRUE(r.Verify().ok());
  int count = 0;
  while (r.HasNext()) {
    auto rec = r.Next();
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->AsU64(), static_cast<std::uint64_t>(count));
    ++count;
  }
  EXPECT_EQ(count, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlvRoundTrip,
                         ::testing::Values(0, 1, 2, 17, 100, 1000));

// ---- Strings ----

TEST(Strings, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(Strings, FormatNanos) {
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(1500), "1.50 us");
  EXPECT_EQ(FormatNanos(2500000), "2.50 ms");
  EXPECT_EQ(FormatNanos(1250000000ULL), "1.250 s");
}

TEST(Strings, TablePrinterAlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

// ---- FlatMap / FlatNameMap -------------------------------------------------

TEST(FlatMap, InsertFindEraseKeepKeyOrder) {
  base::FlatMap<int, std::string> m;
  m[30] = "c";
  m[10] = "a";
  m[20] = "b";
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(20), m.end());
  EXPECT_EQ(m.find(20)->second, "b");
  EXPECT_EQ(m.find(99), m.end());
  // Iteration is ascending-key, exactly like std::map.
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
  // erase(key) and erase(iterator) with the std::map contract.
  EXPECT_EQ(m.erase(20), 1u);
  EXPECT_EQ(m.erase(20), 0u);
  auto it = m.erase(m.find(10));
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, 30);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, OperatorBracketDefaultConstructsOnce) {
  base::FlatMap<int, int> m;
  EXPECT_EQ(m[5], 0);
  m[5] = 7;
  EXPECT_EQ(m[5], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EraseIteratorLoopMatchesStdMapIdiom) {
  base::FlatMap<int, int> m;
  for (int i = 0; i < 10; ++i) m[i] = i;
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(FlatNameMap, LexicographicIterationAndStableAddresses) {
  base::FlatNameMap<int> m;
  int* b = &m.GetOrCreate("bravo");
  int* a = &m.GetOrCreate("alpha");
  *b = 2;
  *a = 1;
  // Growth must not move values: the addresses handed out stay live.
  for (int i = 0; i < 100; ++i) m.GetOrCreate("filler" + std::to_string(i));
  EXPECT_EQ(&m.GetOrCreate("alpha"), a);
  EXPECT_EQ(&m.GetOrCreate("bravo"), b);
  EXPECT_EQ(*a, 1);
  // Iteration yields names in lexicographic order via structured bindings.
  std::string previous;
  for (const auto& [name, value] : m) {
    EXPECT_LT(previous, name);
    previous = name;
  }
  EXPECT_EQ(m.size(), 102u);
  EXPECT_TRUE(m.contains("alpha"));
  EXPECT_FALSE(m.contains("zulu"));
  EXPECT_EQ(m.at("bravo"), 2);
  ASSERT_NE(m.find("bravo"), m.end());
  EXPECT_EQ(m.find("bravo")->second, 2);
  EXPECT_EQ(m.Find("zulu"), nullptr);
}

}  // namespace
}  // namespace viator
