// The compiled-out half of the latency-plane cost contract
// (docs/LATENCY.md): this translation unit is built with
// -DVIATOR_LAT_COUNTERS=0 (see tests/CMakeLists.txt), so the probe macros
// must expand to nothing at all — no flight id is ever assigned and no
// sketch bucket moves even with the runtime switch forced on, and the
// macros must still parse everywhere a statement can appear.
#include <cstdint>

#include <gtest/gtest.h>

#include "telemetry/latency_plane.h"

#if VIATOR_LAT_COUNTERS
#error "this test must be compiled with -DVIATOR_LAT_COUNTERS=0"
#endif

namespace viator {
namespace {

namespace lat = telemetry::lat;

struct FakeShuttle {
  std::uint64_t lat_id = 0;
  struct {
    std::uint8_t kind = 0;
  } header;
  struct {
    std::uint64_t trace_id = 0;
  } trace;
};

std::uint64_t InstrumentedWork(lat::Lane* lane, std::size_t n) {
  FakeShuttle shuttle;
  VIATOR_LAT_BIRTH(lane, shuttle, 1);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    VIATOR_LAT_HOP(lane, 0, i);
    VIATOR_LAT_QUEUE(lane, 0, i);
    acc += i * 2654435761u;
  }
  VIATOR_LAT_EXEC_ENTER(lane, shuttle, 2);
  VIATOR_LAT_EXEC_DONE(lane, shuttle, 3, 0);
  if (n % 2 == 0) VIATOR_LAT_DELIVERED(lane, shuttle, 4);  // statement position
  else VIATOR_LAT_DROP(lane, shuttle, 4);
  VIATOR_LAT_LOST(lane, shuttle.lat_id, 5);
  return acc + shuttle.lat_id;
}

TEST(LatCompiledOut, NoProbeFiresEvenWithRuntimeSwitchOn) {
  lat::SetEnabled(true);
  lat::Lane lane;
  EXPECT_NE(InstrumentedWork(&lane, 1000), 0u);
  EXPECT_NE(InstrumentedWork(nullptr, 999), 0u);  // null lane parses too
  lat::SetEnabled(false);

  // Nothing moved: no flight opened, no stage sketch recorded.
  EXPECT_EQ(lane.open_flights(), 0u);
  EXPECT_EQ(lane.DeliveredCount(), 0u);
  EXPECT_EQ(lane.DroppedCount(), 0u);
  for (std::size_t s = 0; s < lat::kStageCount; ++s) {
    const auto stage = static_cast<lat::Stage>(s);
    for (std::size_t c = 0; c < lat::StageClassCount(stage); ++c) {
      EXPECT_TRUE(lane.Sketch(stage, c).empty())
          << lat::StageName(stage) << "[" << c << "]";
    }
  }

  // The Lane API itself stays live in this build (the shard barrier still
  // folds windows); only the probe macros vanish.
  lane.OnBirth(1, 0, 0, 0);
  lane.OnDelivered(1, 10);
  EXPECT_EQ(lane.DeliveredCount(), 1u);
}

}  // namespace
}  // namespace viator
