// Wandering Observatory: causal span collection, the event-loop profiler,
// export round-trips and the end-to-end acceptance property — a traced
// capsule's spans reconstruct into one connected causal tree crossing
// several ships and services.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/caching.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "telemetry/export.h"
#include "telemetry/perf_counters.h"
#include "telemetry/perf_stats.h"
#include "telemetry/profiler.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"

namespace viator {
namespace {

// ---- SpanCollector ----------------------------------------------------------

TEST(SpanCollector, IssuesNonZeroDistinctIds) {
  telemetry::SpanCollector collector(/*id_seed=*/1, /*capacity=*/16);
  const auto a = collector.StartTrace();
  const auto b = collector.StartTrace();
  EXPECT_NE(a.trace_id, 0u);
  EXPECT_NE(b.trace_id, 0u);
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_TRUE(a.active());
  EXPECT_EQ(collector.NextSpanId(), 1u);
  EXPECT_EQ(collector.NextSpanId(), 2u);
  EXPECT_EQ(collector.traces_started(), 2u);
}

TEST(SpanCollector, SameSeedSameIds) {
  telemetry::SpanCollector a(/*id_seed=*/77, /*capacity=*/4);
  telemetry::SpanCollector b(/*id_seed=*/77, /*capacity=*/4);
  EXPECT_EQ(a.StartTrace().trace_id, b.StartTrace().trace_id);
  EXPECT_EQ(a.StartTrace().trace_id, b.StartTrace().trace_id);
}

TEST(SpanCollector, CapacityDropsNewSpans) {
  telemetry::SpanCollector collector(/*id_seed=*/1, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    telemetry::SpanRecord record;
    record.span_id = collector.NextSpanId();
    collector.Commit(record);
  }
  EXPECT_EQ(collector.spans().size(), 2u);
  EXPECT_EQ(collector.spans_recorded(), 2u);
  EXPECT_EQ(collector.spans_dropped(), 3u);
  // The *oldest* spans are the ones kept (the front of a trace matters).
  EXPECT_EQ(collector.spans()[0].span_id, 1u);
  EXPECT_EQ(collector.spans()[1].span_id, 2u);
}

TEST(SpanCollector, ClearKeepsIdState) {
  telemetry::SpanCollector collector(/*id_seed=*/1, /*capacity=*/4);
  (void)collector.NextSpanId();
  (void)collector.NextSpanId();
  collector.Clear();
  EXPECT_EQ(collector.NextSpanId(), 3u);
}

TEST(SpanCollector, StateRoundTripIsExact) {
  telemetry::SpanCollector collector(/*id_seed=*/5, /*capacity=*/8);
  auto ctx = collector.StartTrace();
  telemetry::SpanRecord record;
  record.trace_id = ctx.trace_id;
  record.span_id = collector.NextSpanId();
  record.ship = 3;
  record.component = "svc.caching";
  record.name = "get";
  record.start = 10;
  record.end = 20;
  collector.Commit(record);

  telemetry::SpanCollector restored(/*id_seed=*/999, /*capacity=*/8);
  restored.RestoreState(collector.SaveState());
  ASSERT_EQ(restored.spans().size(), 1u);
  EXPECT_EQ(restored.spans()[0].component, "svc.caching");
  EXPECT_EQ(restored.traces_started(), 1u);
  // The restored id RNG continues the source's stream, not its own seed's.
  EXPECT_EQ(restored.StartTrace().trace_id, collector.StartTrace().trace_id);
  EXPECT_EQ(restored.NextSpanId(), collector.NextSpanId());
}

// ---- SpanScope --------------------------------------------------------------

TEST(SpanScope, RecordsParentChildLinkage) {
  sim::Simulator simulator;
  telemetry::TelemetryConfig config;
  config.enable_tracing = true;
  telemetry::Telemetry telemetry(simulator, config, /*id_seed=*/42);

  auto root_ctx = telemetry.StartTrace();
  ASSERT_TRUE(root_ctx.active());
  {
    telemetry::SpanScope root(telemetry, root_ctx, /*ship=*/1, "wn", "inject");
    EXPECT_EQ(root.context().parent_span_id, 0u);
    telemetry::SpanScope child(telemetry, root.context(), /*ship=*/2, "ship",
                               "forward");
    EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
    EXPECT_EQ(child.context().parent_span_id, root.context().span_id);
  }
  const auto& spans = telemetry.spans().spans();
  ASSERT_EQ(spans.size(), 2u);  // child commits first (destruction order)
  EXPECT_EQ(spans[0].name, "forward");
  EXPECT_EQ(spans[1].name, "inject");
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
}

TEST(SpanScope, InertWhenTracingDisabled) {
  sim::Simulator simulator;
  telemetry::Telemetry telemetry(simulator, {}, /*id_seed=*/42);
  EXPECT_FALSE(telemetry.StartTrace().active());
  telemetry::TraceContext parent{123, 7, 3};
  telemetry::SpanScope scope(telemetry, parent, 1, "ship", "consume");
  EXPECT_EQ(scope.context(), parent);  // echoes the parent verbatim
  EXPECT_TRUE(telemetry.spans().spans().empty());
}

TEST(SpanScope, InertForUntracedCapsules) {
  sim::Simulator simulator;
  telemetry::TelemetryConfig config;
  config.enable_tracing = true;
  telemetry::Telemetry telemetry(simulator, config, /*id_seed=*/42);
  telemetry::TraceContext inactive;  // trace_id 0
  telemetry::SpanScope scope(telemetry, inactive, 1, "ship", "consume");
  EXPECT_FALSE(scope.context().active());
  EXPECT_TRUE(telemetry.spans().spans().empty());
}

// ---- Export round-trips -----------------------------------------------------

std::vector<telemetry::SpanRecord> SampleSpans() {
  std::vector<telemetry::SpanRecord> spans;
  spans.push_back({0xabcdef0123456789ULL, 1, 0, 4, "wn", "inject", 100, 250});
  spans.push_back(
      {0xabcdef0123456789ULL, 2, 1, 5, "svc.caching", "get", 300, 1800});
  spans.push_back({0x42ULL, 3, 0, 6, "ship", "name \"quoted\"\n", 0, 7});
  return spans;
}

TEST(Export, SpansJsonlRoundTripsExactly) {
  const auto spans = SampleSpans();
  std::stringstream stream;
  telemetry::WriteSpansJsonl(spans, stream);
  const auto parsed = telemetry::ParseSpans(stream);
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, spans[i].span_id);
    EXPECT_EQ(parsed[i].parent_span_id, spans[i].parent_span_id);
    EXPECT_EQ(parsed[i].ship, spans[i].ship);
    EXPECT_EQ(parsed[i].component, spans[i].component);
    EXPECT_EQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].start, spans[i].start);
    EXPECT_EQ(parsed[i].end, spans[i].end);
  }
}

TEST(Export, SpansJsonlIsDeterministic) {
  std::ostringstream a, b;
  telemetry::WriteSpansJsonl(SampleSpans(), a);
  telemetry::WriteSpansJsonl(SampleSpans(), b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"trace\":\"abcdef0123456789\""), std::string::npos);
}

TEST(Export, TraceEventJsonRoundTripsIds) {
  const auto spans = SampleSpans();
  std::stringstream stream;
  telemetry::WriteTraceEventJson(spans, stream);
  EXPECT_NE(stream.str().find("\"displayTimeUnit\":\"ns\""),
            std::string::npos);
  const auto parsed = telemetry::ParseSpans(stream);
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, spans[i].span_id);
    EXPECT_EQ(parsed[i].parent_span_id, spans[i].parent_span_id);
    EXPECT_EQ(parsed[i].ship, spans[i].ship);
    EXPECT_EQ(parsed[i].component, spans[i].component);
    // ts/dur are µs with three decimals, so ns timestamps survive exactly.
    EXPECT_EQ(parsed[i].start, spans[i].start);
    EXPECT_EQ(parsed[i].end, spans[i].end);
  }
}

TEST(Export, ConnectedTreeDetection) {
  std::vector<telemetry::SpanRecord> tree;
  tree.push_back({9, 1, 0, 0, "wn", "inject", 0, 1});
  tree.push_back({9, 2, 1, 1, "ship", "forward", 1, 2});
  tree.push_back({9, 3, 2, 2, "ship", "consume", 2, 3});
  EXPECT_TRUE(telemetry::IsConnectedTree(tree));

  auto orphan = tree;
  orphan[2].parent_span_id = 99;  // parent not in the set
  EXPECT_FALSE(telemetry::IsConnectedTree(orphan));

  auto forest = tree;
  forest[1].parent_span_id = 0;  // two roots
  EXPECT_FALSE(telemetry::IsConnectedTree(forest));

  EXPECT_FALSE(telemetry::IsConnectedTree({}));
}

TEST(Export, MetricsJsonlRoundTripsValues) {
  sim::StatsRegistry stats;
  stats.GetCounter("wn.shuttles_injected").Add(12);
  stats.GetGauge("ship.queue_depth").Set(2.5);
  stats.GetHistogram("fabric.latency_ns").Record(1000);
  stats.GetHistogram("fabric.latency_ns").Record(3000);
  std::stringstream stream;
  telemetry::WriteMetricsJsonl(stats, stream);
  const auto parsed = telemetry::ParseMetricsJsonl(stream);
  EXPECT_DOUBLE_EQ(parsed.at("wn.shuttles_injected"), 12.0);
  EXPECT_DOUBLE_EQ(parsed.at("ship.queue_depth"), 2.5);
  EXPECT_DOUBLE_EQ(parsed.at("fabric.latency_ns"), 2000.0);  // mean
}

TEST(Export, PrometheusTextSanitizesNames) {
  sim::StatsRegistry stats;
  stats.GetCounter("wn.shuttles_injected").Add(3);
  stats.GetHistogram("fabric.latency_ns").Record(500);
  std::ostringstream out;
  telemetry::WritePrometheusText(stats, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("viator_wn_shuttles_injected 3"), std::string::npos);
  EXPECT_NE(text.find("viator_fabric_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("le="), std::string::npos);
  // Metric names never keep the dot ("fabric.latency" would be invalid).
  EXPECT_EQ(text.find("viator_fabric.latency"), std::string::npos);
}

TEST(Export, PrometheusTextMatchesGoldenBytes) {
  // Byte-exact exposition-format golden: HELP + TYPE per metric, sanitized
  // names, classic histograms with cumulative le buckets. Exporter changes
  // must update this golden deliberately — scrape configs depend on the
  // exact shape. 4.0 lands in the half-octave bucket [4, 2^2.5), whose
  // upper bound 2^2.5 prints as its shortest round-trip decimal.
  sim::StatsRegistry stats;
  stats.GetCounter("wn.probes").Add(3);
  stats.GetGauge("health.score.4").Set(0.25);
  stats.GetHistogram("h.lat").Record(4.0);
  std::ostringstream out;
  telemetry::WritePrometheusText(stats, out);
  EXPECT_EQ(out.str(),
            "# HELP viator_wn_probes Viator counter wn.probes\n"
            "# TYPE viator_wn_probes counter\n"
            "viator_wn_probes 3\n"
            "# HELP viator_health_score_4 Viator gauge health.score.4\n"
            "# TYPE viator_health_score_4 gauge\n"
            "viator_health_score_4 0.25\n"
            "# HELP viator_h_lat Viator histogram h.lat\n"
            "# TYPE viator_h_lat histogram\n"
            "viator_h_lat_bucket{le=\"5.6568542494923806\"} 1\n"
            "viator_h_lat_bucket{le=\"+Inf\"} 1\n"
            "viator_h_lat_sum 4\n"
            "viator_h_lat_count 1\n");
}

// ---- Profiler ---------------------------------------------------------------

TEST(Profiler, AttributesCostPerComponent) {
  sim::Simulator simulator;
  telemetry::Profiler profiler;
  profiler.Attach(simulator);
  simulator.ScheduleAfter(10, [] {}, "fabric.deliver");
  simulator.ScheduleAfter(20, [] {}, "fabric.deliver");
  simulator.ScheduleAfter(30, [] {});  // unlabeled → "sim.event"
  simulator.RunAll();
  const auto& costs = profiler.costs();
  ASSERT_TRUE(costs.contains("fabric.deliver"));
  EXPECT_EQ(costs.at("fabric.deliver").calls, 2u);
  EXPECT_EQ(costs.at("fabric.deliver").virtual_ns, 20u);  // 10 + (20-10)
  ASSERT_TRUE(costs.contains("sim.event"));
  EXPECT_EQ(costs.at("sim.event").calls, 1u);

  telemetry::Profiler::Scope(&profiler, "manual.section");
  EXPECT_TRUE(costs.contains("manual.section"));

  std::ostringstream report, json;
  profiler.Report(report);
  profiler.WriteJson(json);
  EXPECT_NE(report.str().find("fabric.deliver"), std::string::npos);
  EXPECT_NE(json.str().find("\"manual.section\""), std::string::npos);
}

TEST(Profiler, PublishStatsExportsDeterministicGauges) {
  sim::Simulator simulator;
  telemetry::Profiler profiler;
  profiler.Attach(simulator);
  simulator.ScheduleAfter(10, [] {}, "fabric.deliver");
  simulator.ScheduleAfter(20, [] {}, "fabric.deliver");
  simulator.ScheduleAfter(30, [] {}, "ship.consume");
  EXPECT_EQ(simulator.queue_depth(), 3u);
  simulator.RunAll();

  sim::StatsRegistry stats;
  profiler.PublishStats(stats);
  EXPECT_DOUBLE_EQ(stats.GetGauge("profiler.queue_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(stats.GetGauge("profiler.queue_depth_max").value(), 3.0);
  EXPECT_DOUBLE_EQ(stats.GetGauge("profiler.events.fabric.deliver").value(),
                   2.0);
  EXPECT_DOUBLE_EQ(stats.GetGauge("profiler.events.ship.consume").value(),
                   1.0);
  // Process memory gauges ride along; they are host-varying so only
  // presence and plausibility are asserted (maxrss is never 0 on Linux).
  EXPECT_GT(stats.GetGauge("proc.maxrss_bytes").value(), 0.0);
  EXPECT_GE(stats.GetGauge("proc.rss_bytes").value(), 0.0);
  // Wall-clock numbers must not leak into the registry: aside from the
  // proc.* gauges above, every published value is identical across
  // identical-seed runs.
  for (const auto& [name, gauge] : stats.gauges()) {
    EXPECT_TRUE(name.find("profiler.") != std::string::npos ||
                name.rfind("proc.", 0) == 0)
        << name;
    EXPECT_EQ(name.find("wall"), std::string::npos) << name;
  }
}

TEST(Profiler, DetachedScopeIsInert) {
  telemetry::Profiler profiler;
  { telemetry::Profiler::Scope scope(&profiler, "x"); }
  { telemetry::Profiler::Scope scope(nullptr, "y"); }
  EXPECT_TRUE(profiler.costs().empty());
}

// ---- BenchReport ------------------------------------------------------------

TEST(BenchReport, ToJsonIsFlatAndSorted) {
  telemetry::BenchReport report("micro_substrate");
  report.Set("throughput_mops", 12.5);
  report.Set("bytes", 1024);
  sim::StatsRegistry stats;
  stats.GetCounter("shuttles").Add(7);
  report.AddCounters(stats, "wn");
  EXPECT_EQ(report.ToJson(),
            "{\n  \"bytes\": 1024,\n  \"throughput_mops\": 12.5,\n"
            "  \"wn.shuttles\": 7\n}\n");
}

// ---- End-to-end acceptance --------------------------------------------------

/// The ISSUE acceptance scenario: a seeded 3x3 grid with a caching proxy in
/// front of an origin; a GET that misses produces one trace whose spans form
/// a single connected causal tree crossing >= 3 ships and >= 2 services.
struct TracedCacheRun {
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(3, 3);
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> network;
  std::unique_ptr<services::ContentOrigin> origin;
  std::unique_ptr<services::CachingService> cache;

  explicit TracedCacheRun(bool tracing = true) {
    config.telemetry.enable_tracing = tracing;
    network = std::make_unique<wli::WanderingNetwork>(simulator, topology,
                                                      config, /*seed=*/20260806);
    network->PopulateAllNodes();
    origin = std::make_unique<services::ContentOrigin>(*network, 8,
                                                       /*object_words=*/16);
    cache = std::make_unique<services::CachingService>(*network, 4, 8);
  }

  void RequestContent(net::NodeId requester, std::uint64_t content_id,
                      std::uint64_t flow) {
    ASSERT_TRUE(network
                    ->Inject(wli::Shuttle::Data(
                        requester, 4,
                        {services::kCacheOpGet,
                         static_cast<std::int64_t>(content_id)},
                        flow))
                    .ok());
    simulator.RunAll();
  }
};

TEST(Acceptance, CapsuleTraceFormsConnectedTreeAcrossShipsAndServices) {
  TracedCacheRun run;
  run.RequestContent(0, 7, 1);  // miss: 0 → 4 (cache) → 8 (origin) → back

  // Export to the Chrome trace_event format and reconstruct from the export
  // alone — the acceptance property must survive the serialization.
  std::stringstream exported;
  telemetry::WriteTraceEventJson(run.network->telemetry().spans().spans(),
                                 exported);
  const auto reconstructed = telemetry::ParseSpans(exported);
  ASSERT_FALSE(reconstructed.empty());
  const auto traces = telemetry::GroupByTrace(reconstructed);
  ASSERT_EQ(traces.size(), 1u);

  const auto& spans = traces.begin()->second;
  EXPECT_TRUE(telemetry::IsConnectedTree(spans));
  std::set<std::uint64_t> ships;
  std::set<std::string> services;
  for (const auto& span : spans) {
    ships.insert(span.ship);
    if (span.component.rfind("svc.", 0) == 0) services.insert(span.component);
  }
  EXPECT_GE(ships.size(), 3u) << telemetry::FormatTraceTree(spans);
  EXPECT_GE(services.size(), 2u) << telemetry::FormatTraceTree(spans);
  EXPECT_TRUE(services.contains("svc.caching"));
  EXPECT_TRUE(services.contains("svc.origin"));
}

TEST(Acceptance, SecondRequestHitsCacheWithShorterTrace) {
  TracedCacheRun run;
  run.RequestContent(0, 7, 1);
  run.RequestContent(2, 7, 2);
  const auto traces =
      telemetry::GroupByTrace(run.network->telemetry().spans().spans());
  ASSERT_EQ(traces.size(), 2u);
  std::vector<std::size_t> sizes;
  for (const auto& [id, spans] : traces) {
    EXPECT_TRUE(telemetry::IsConnectedTree(spans));
    sizes.push_back(spans.size());
  }
  // The hit trace never reaches the origin, so it is strictly shorter.
  EXPECT_NE(sizes[0], sizes[1]);
  EXPECT_EQ(run.cache->hits(), 1u);
  EXPECT_EQ(run.cache->misses(), 1u);
}

TEST(Acceptance, TracingIsDeterminismNeutral) {
  // The same seeded scenario with tracing on and off must make identical
  // simulation decisions: same virtual clock, same event count, same trace
  // log (the network's TraceSink, not the telemetry spans).
  TracedCacheRun traced(true);
  TracedCacheRun untraced(false);
  for (auto* run : {&traced, &untraced}) {
    run->RequestContent(0, 7, 1);
    run->RequestContent(2, 7, 2);
    run->network->Pulse();
    run->simulator.RunAll();
  }
  EXPECT_EQ(traced.simulator.now(), untraced.simulator.now());
  EXPECT_EQ(traced.simulator.dispatched(), untraced.simulator.dispatched());
  std::ostringstream traced_log, untraced_log;
  traced.network->trace().WriteJsonl(traced_log);
  untraced.network->trace().WriteJsonl(untraced_log);
  EXPECT_EQ(traced_log.str(), untraced_log.str());
  EXPECT_FALSE(traced.network->telemetry().spans().spans().empty());
  EXPECT_TRUE(untraced.network->telemetry().spans().spans().empty());
}

// ---- Shared exporter escaping ----------------------------------------------

TEST(Escaping, JsonStyleEscapesQuotesAndControls) {
  const std::string raw = "a\"b\\c\nd\re\tf\x01g";
  EXPECT_EQ(telemetry::Escaped(raw, telemetry::EscapeStyle::kJson),
            "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
}

TEST(Escaping, PrometheusHelpEscapesOnlyBackslashAndNewline) {
  const std::string raw = "a\"b\\c\nd\te";
  EXPECT_EQ(telemetry::Escaped(raw, telemetry::EscapeStyle::kPrometheusHelp),
            "a\"b\\\\c\\nd\te");
}

TEST(Escaping, PrometheusLabelEscapesQuoteBackslashNewline) {
  const std::string raw = "a\"b\\c\nd\te";
  EXPECT_EQ(telemetry::Escaped(raw, telemetry::EscapeStyle::kPrometheusLabel),
            "a\\\"b\\\\c\\nd\te");
}

TEST(Escaping, AppendFormAppendsInPlace) {
  std::string out = "prefix:";
  telemetry::AppendEscaped(out, "x\ny", telemetry::EscapeStyle::kJson);
  EXPECT_EQ(out, "prefix:x\\ny");
}

TEST(Escaping, PassThroughForPlainText) {
  for (const auto style :
       {telemetry::EscapeStyle::kJson, telemetry::EscapeStyle::kPrometheusHelp,
        telemetry::EscapeStyle::kPrometheusLabel}) {
    EXPECT_EQ(telemetry::Escaped("plain_text-123", style), "plain_text-123");
  }
}

// ---- Shard Observatory timeline export --------------------------------------

telemetry::ShardWindowRecord MakeWindowRecord(std::uint64_t index) {
  telemetry::ShardWindowRecord record;
  record.window_index = index;
  record.virtual_start = index * 1000;
  record.virtual_end = (index + 1) * 1000;
  record.merge_wall_ns = 300;
  record.merge_handoffs = 2;
  record.shards.push_back({.dispatched = 10,
                           .handoffs_out = 1,
                           .handoffs_in = 1,
                           .wall_ns = 5000,
                           .start_ns = 100,
                           .stall_ns = 0,
                           .queue_depth = 1.0});
  record.shards.push_back({.dispatched = 4,
                           .handoffs_out = 1,
                           .handoffs_in = 1,
                           .wall_ns = 2000,
                           .start_ns = 200,
                           .stall_ns = 2900,
                           .queue_depth = 0.0});
  return record;
}

TEST(Export, ShardTimelineEmitsOneTrackPerShardPlusMerge) {
  telemetry::ShardObservatory observatory(2);
  observatory.RecordWindow(MakeWindowRecord(0));
  observatory.RecordWindow(MakeWindowRecord(1));
  std::ostringstream out;
  telemetry::WriteShardTimelineJson(observatory, out);
  const std::string json = out.str();

  // Track metadata: one named thread per shard, one merge track after them.
  EXPECT_NE(json.find("\"args\":{\"name\":\"shard 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"shard 1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"merge\"}"), std::string::npos);
  // Window slices carry the virtual-time span and per-shard load.
  EXPECT_NE(json.find("\"name\":\"window 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"window 1\""), std::string::npos);
  EXPECT_NE(json.find("\"virtual_start\":1000"), std::string::npos);
  // Shard 1 finished early: it gets a barrier slice; the straggler does not.
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"stall_ns\":2900"), std::string::npos);
  // Merge slices land on the merge track with their handoff volume.
  EXPECT_NE(json.find("\"name\":\"merge 0\""), std::string::npos);
  EXPECT_NE(json.find("\"handoffs\":2"), std::string::npos);
  // Valid trace shape: object wrapper, µs timestamps with ns precision.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ts\":0.100"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST(Export, ShardTimelineSuccessiveWindowsAbut) {
  // Window 1 must start after window 0's span plus its merge: shard 0's
  // window-1 slice begins at (100 + 5000 + 300) + 100 ns = 5.500 µs.
  telemetry::ShardObservatory observatory(2);
  observatory.RecordWindow(MakeWindowRecord(0));
  observatory.RecordWindow(MakeWindowRecord(1));
  std::ostringstream out;
  telemetry::WriteShardTimelineJson(observatory, out);
  EXPECT_NE(out.str().find("\"ts\":5.500"), std::string::npos);
}

// ---- Perf counter stats publication -----------------------------------------

TEST(PerfStats, PublishAndFormatFiredProbes) {
  telemetry::perf::ResetAll();
  telemetry::perf::SetEnabled(true);
  { VIATOR_PERF_SCOPE(kSimDispatch); }
  { VIATOR_PERF_SCOPE(kSimDispatch); }
  VIATOR_PERF_COUNT(kRngDraw);
  telemetry::perf::SetEnabled(false);

  sim::StatsRegistry stats;
  telemetry::PublishPerfStats(stats);
  ASSERT_TRUE(stats.gauges().contains("perf.sim_dispatch.calls"));
  EXPECT_EQ(stats.gauges().at("perf.sim_dispatch.calls").value(), 2.0);
  EXPECT_EQ(stats.gauges().at("perf.rng_draw.calls").value(), 1.0);
  // Publication is Set(), not Add(): publishing twice must not double.
  telemetry::PublishPerfStats(stats);
  EXPECT_EQ(stats.gauges().at("perf.sim_dispatch.calls").value(), 2.0);

  const std::string report = telemetry::FormatPerfReport();
  EXPECT_NE(report.find("perf.sim_dispatch"), std::string::npos);
  EXPECT_NE(report.find("perf.rng_draw"), std::string::npos);
  // Zero-call probes are omitted from the table.
  EXPECT_EQ(report.find("perf.mailbox_drain"), std::string::npos);
  telemetry::perf::ResetAll();
}

TEST(PerfStats, EmptyAggregateFormatsPlaceholder) {
  telemetry::perf::ResetAll();
  const std::string report = telemetry::FormatPerfReport();
  EXPECT_NE(report.find("no probes fired"), std::string::npos);
}

TEST(PerfStats, RuntimeSwitchGatesProbes) {
  telemetry::perf::ResetAll();
  telemetry::perf::SetEnabled(false);
  { VIATOR_PERF_SCOPE(kMergeWindow); }
  VIATOR_PERF_COUNT(kRngDraw);
  const auto aggregate = telemetry::perf::Aggregate();
  using telemetry::perf::Metric;
  EXPECT_EQ(aggregate[static_cast<std::size_t>(Metric::kMergeWindow)].calls,
            0u);
  EXPECT_EQ(aggregate[static_cast<std::size_t>(Metric::kRngDraw)].calls, 0u);
}

}  // namespace
}  // namespace viator
