// E13 — §D security management class: "capsule authorization and resource
// access control", plus containment of the one genuinely dangerous WLI
// mechanism — self-replicating jets.
//
// Reproduction: (a) capsule-authorization acceptance matrix and its byte/
// time overhead, (b) jet population vs the security class's replication
// budget cap (runaway containment), (c) per-capsule fuel quota stopping a
// runaway loop.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/security_mgmt.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

int main() {
  std::printf("E13 / security management\n\n");
  telemetry::BenchReport report("security");

  // (a) Authorization matrix.
  {
    TablePrinter table({"shuttle", "network key", "outcome"});
    auto try_install = [&](bool signed_ok, bool key_enabled, bool tampered) {
      sim::Simulator simulator;
      net::Topology topology = net::MakeLine(2);
      wli::WnConfig config;
      config.auth_key = key_enabled ? 0xabcdef : 0;
      wli::WanderingNetwork wn(simulator, topology, config, 1);
      wn.PopulateAllNodes();
      auto program = vm::Assemble("candidate", "push 1\nhalt\n");
      wli::Shuttle s;
      s.header.source = 0;
      s.header.destination = 1;
      s.header.kind = wli::ShuttleKind::kCode;
      s.code_image = program->Serialize();
      if (signed_ok) {
        services::CapsuleAuthority authority(0xabcdef);
        authority.Sign(s);
      }
      if (tampered) s.code_image[4] ^= std::byte{0x1};
      (void)wn.Inject(std::move(s));
      simulator.RunAll();
      return wn.stats().CounterValue("wn.code_installed") == 1;
    };
    table.AddRow({"signed", "enabled",
                  try_install(true, true, false) ? "installed" : "REJECTED"});
    table.AddRow({"unsigned", "enabled",
                  try_install(false, true, false) ? "INSTALLED" : "rejected"});
    table.AddRow({"signed, tampered", "enabled",
                  try_install(true, true, true) ? "INSTALLED" : "rejected"});
    table.AddRow({"unsigned", "disabled",
                  try_install(false, false, false) ? "installed" : "REJECTED"});
    std::printf("(a) capsule authorization acceptance matrix\n");
    table.Print(std::cout);
  }

  // (a') Tagging cost (wall clock, amortized).
  {
    auto program = vm::Assemble("payload", "push 1\nhalt\n");
    const auto image = program->Serialize();
    constexpr int kReps = 200000;
    const auto start = std::chrono::steady_clock::now();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < kReps; ++i) {
      sink ^= KeyedTag(0xabcdef + i, image);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("\n    keyed-tag cost: %.1f ns per %zu-byte capsule"
                " (%d reps)\n",
                static_cast<double>(elapsed) / kReps, image.size(), kReps);
  }

  // (b) Jet containment: population vs budget cap.
  {
    TablePrinter table({"budget cap", "jet replications", "jets refused"});
    auto jet_program = vm::Assemble("spreader", R"(
  sys neighbor_count
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  load 0
  sys neighbor
  sys replicate
  pop
  jmp loop
done:
  halt
)");
    for (std::uint32_t cap : {0u, 1u, 2u, 4u, 6u}) {
      sim::Simulator simulator;
      Rng rng(7);
      net::Topology topology = net::MakeRandom(16, 0.25, rng);
      wli::WnConfig config;
      config.jet_budget_cap = cap;
      wli::WanderingNetwork wn(simulator, topology, config, 7);
      wn.PopulateAllNodes();
      (void)wn.PublishProgram(*jet_program, 0);
      wli::Shuttle jet;
      jet.header.source = 0;
      jet.header.destination = 1;
      jet.header.kind = wli::ShuttleKind::kJet;
      jet.code_digest = jet_program->digest();
      jet.code_image = jet_program->Serialize();
      jet.replication_budget = 100;  // attempted runaway
      (void)wn.Inject(std::move(jet));
      simulator.RunAll();
      table.AddRow({std::to_string(cap),
                    std::to_string(
                        wn.stats().CounterValue("wn.jet_replications")),
                    std::to_string(
                        wn.stats().CounterValue("wn.jet_refused"))});
      report.Set("jet_replications_cap" + std::to_string(cap),
                 static_cast<double>(
                     wn.stats().CounterValue("wn.jet_replications")));
    }
    std::printf("\n(b) jet containment on a 16-ship random net: a jet"
                " requesting budget 100 is clamped by the security class\n");
    table.Print(std::cout);
  }

  // (c) Fuel quota stops runaway capsules.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(2);
    wli::WnConfig config;
    config.quota.fuel_per_capsule = 5000;
    wli::WanderingNetwork wn(simulator, topology, config, 1);
    wn.PopulateAllNodes();
    auto runaway = vm::Assemble("runaway", "loop:\njmp loop\n");
    (void)wn.PublishProgram(*runaway, 0);
    wli::Shuttle s = wli::Shuttle::Data(0, 1, {1}, 1);
    s.code_digest = runaway->digest();
    (void)wn.Inject(std::move(s));
    simulator.RunAll();
    std::printf("\n(c) runaway capsule (infinite loop): out-of-fuel"
                " terminations = %llu (fuel cap %llu, host unharmed)\n",
                static_cast<unsigned long long>(
                    wn.stats().CounterValue("wn.exec_out_of_fuel")),
                static_cast<unsigned long long>(
                    config.quota.fuel_per_capsule));
    report.Set("exec_out_of_fuel",
               static_cast<double>(
                   wn.stats().CounterValue("wn.exec_out_of_fuel")));
  }
  (void)report.Write();

  std::printf("\nexpected shape: only correctly signed code installs when"
              " the key is on; jet population scales with the cap and is"
              " zero at cap 0; runaway code burns its quota and stops.\n");
  return 0;
}
