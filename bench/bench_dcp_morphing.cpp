// E14 — Dualistic Congruence Principle: morphing packets and a-priori ship
// adaptation.
//
// "A shuttle approaching a ship can re-configure itself becoming a morphing
// packet to provide the desired interface and match a ship's requirements"
// — and symmetrically the ship "can adapt (itself) a priori ... to
// best-match the structure of the active packets at the time of delivery."
//
// Reproduction: (a) dock success and morph overhead vs how many ship
// classes require distinct interfaces and which adapters exist; (b) the
// ship-side congruence score under stable vs shifting vs mixed traffic —
// a correct prediction waives the adaptation cost.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/dcp.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

int main() {
  std::printf("E14 / dualistic congruence — morphing packets and ship-side"
              " congruence\n\n");
  telemetry::BenchReport report("dcp_morphing");

  // (a) Interface diversity sweep on one network.
  {
    TablePrinter table({"class interfaces", "adapters", "docked",
                        "rejected", "morphs", "morph bytes"});
    struct Scenario {
      const char* label;
      int interfaces;     // distinct required interfaces over 3 classes
      bool adapters;      // register adapters for them?
    };
    const Scenario scenarios[] = {
        {"uniform (all default)", 1, false},
        {"3 interfaces, no adapters", 3, false},
        {"3 interfaces, full adapters", 3, true},
    };
    for (const auto& scenario : scenarios) {
      sim::Simulator simulator;
      net::Topology topology = net::MakeStar(4);
      wli::WnConfig config;
      wli::WanderingNetwork wn(simulator, topology, config, 21);
      // One ship per class around the hub.
      wn.AddShip(0, node::ShipClass::kAgent);
      wn.AddShip(1, node::ShipClass::kServer);
      wn.AddShip(2, node::ShipClass::kClient);
      wn.AddShip(3, node::ShipClass::kAgent);
      if (scenario.interfaces > 1) {
        wn.morphing().SetRequiredInterface(node::ShipClass::kServer, 1);
        wn.morphing().SetRequiredInterface(node::ShipClass::kClient, 2);
        wn.morphing().SetRequiredInterface(node::ShipClass::kAgent, 3);
      }
      if (scenario.adapters) {
        for (wli::InterfaceId to : {1u, 2u, 3u}) {
          wn.morphing().AddAdapter(0, to, 16, 20 * sim::kMicrosecond);
        }
      }
      std::uint64_t docked = 0;
      wn.ForEachShip([&](wli::Ship& ship) {
        ship.SetDeliverySink(
            [&docked](wli::Ship&, const wli::Shuttle&) { ++docked; });
      });
      // 30 shuttles from the hub to each class of ship. The sender did not
      // "arrange the procedure for the shuttle" — morphing must do it.
      for (int i = 0; i < 30; ++i) {
        for (net::NodeId dst : {1u, 2u, 3u}) {
          wli::Shuttle s = wli::Shuttle::Data(0, dst, {i}, dst);
          s.header.dest_class_hint =
              dst == 1 ? node::ShipClass::kServer
                       : (dst == 2 ? node::ShipClass::kClient
                                   : node::ShipClass::kAgent);
          (void)wn.Inject(std::move(s));
        }
      }
      simulator.RunAll();
      const auto morphs = wn.stats().CounterValue("wn.morphs");
      table.AddRow({scenario.label, scenario.adapters ? "yes" : "no",
                    std::to_string(docked),
                    std::to_string(
                        wn.stats().CounterValue("wn.dock_rejected")),
                    std::to_string(morphs),
                    FormatBytes(morphs * 16)});
    }
    std::printf("(a) 90 shuttles to 3 ship classes\n");
    table.Print(std::cout);
  }

  // (b) Congruence score vs traffic stability.
  {
    TablePrinter table({"traffic pattern", "congruence score",
                        "predicted iface", "adaptation waived"});
    struct Pattern {
      const char* label;
      std::function<wli::InterfaceId(int)> iface;
    };
    const Pattern patterns[] = {
        {"stable (all iface 2)", [](int) { return 2u; }},
        {"shift at half (1 -> 3)", [](int i) { return i < 100 ? 1u : 3u; }},
        {"uniform mix of 4", [](int i) { return static_cast<wli::InterfaceId>(i % 4); }},
    };
    int pattern_index = 0;
    for (const auto& pattern : patterns) {
      wli::CongruenceTracker tracker(0.15);
      int waived = 0;
      for (int i = 0; i < 200; ++i) {
        waived += tracker.Observe(pattern.iface(i));
      }
      table.AddRow({pattern.label, FormatDouble(tracker.score(), 3),
                    std::to_string(tracker.predicted()),
                    std::to_string(waived) + "/200"});
      report.Set("congruence_pattern" + std::to_string(pattern_index),
                 tracker.score());
      report.Set("waived_pattern" + std::to_string(pattern_index++), waived);
    }
    std::printf("\n(b) ship-side a-priori adaptation (EWMA congruence)\n");
    table.Print(std::cout);
  }

  std::printf("\nexpected shape: without adapters, heterogeneous interfaces"
              " reject every mismatched dock; adapters restore delivery at"
              " a fixed byte/latency cost; congruence is ~1 for stable"
              " traffic, recovers after a shift, and stays low for mixed"
              " traffic (no structure to predict).\n");
  (void)report.Write();
  return 0;
}
