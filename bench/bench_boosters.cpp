// E19 — protocol boosters head-to-head (§D Boosting class; the author's
// MediaPEP [15] is an "Internet Protocol Booster").
//
// The same lossy segment, three strategies: nothing, FEC (parity
// bandwidth), ARQ (retransmission round trips). Sweep the loss rate and
// report delivery ratio, bandwidth overhead on the segment and delivery
// latency — the classic FEC/ARQ trade the boosting literature describes.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/boosting.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

enum class Strategy { kNone, kFec, kArq };

struct BoostOutcome {
  double delivery = 0.0;
  double segment_bytes = 0.0;   // bytes over the lossy link
  double mean_latency_ms = 0.0;
};

BoostOutcome RunTrial(Strategy strategy, double loss, std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topology;
  topology.AddNodes(4);
  net::LinkConfig clean;
  clean.latency = 5 * sim::kMillisecond;
  net::LinkConfig lossy = clean;
  lossy.loss_probability = loss;
  topology.AddLink(0, 1, clean);
  topology.AddLink(1, 2, lossy);   // the boosted segment (link id 1)
  topology.AddLink(2, 3, clean);

  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, seed);
  wn.PopulateAllNodes();

  int delivered = 0;
  double latency_sum_ms = 0.0;
  std::map<std::int64_t, sim::TimePoint> sent_at;
  wn.ship(3)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (s.header.kind != wli::ShuttleKind::kData || s.payload.empty()) return;
    ++delivered;
    const auto it = sent_at.find(s.payload[0]);
    if (it != sent_at.end()) {
      latency_sum_ms +=
          sim::ToSeconds(simulator.now() - it->second) * 1e3;
    }
  });

  services::FecBooster::Config fec_config;
  fec_config.ingress = 1;
  fec_config.egress = 2;
  fec_config.final_destination = 3;
  services::ArqBooster::Config arq_config;
  arq_config.ingress = 1;
  arq_config.egress = 2;
  arq_config.final_destination = 3;
  std::unique_ptr<services::FecBooster> fec;
  std::unique_ptr<services::ArqBooster> arq;
  if (strategy == Strategy::kFec) {
    fec = std::make_unique<services::FecBooster>(wn, fec_config);
  } else if (strategy == Strategy::kArq) {
    arq = std::make_unique<services::ArqBooster>(wn, arq_config);
  }

  constexpr int kWords = 200;
  for (int i = 0; i < kWords; ++i) {
    simulator.ScheduleAt(i * 10 * sim::kMillisecond, [&, i] {
      sent_at[i] = simulator.now();
      switch (strategy) {
        case Strategy::kNone:
          (void)wn.Inject(wli::Shuttle::Data(1, 3, {i}, 1));
          break;
        case Strategy::kFec:
          (void)fec->SendData(1, i);
          break;
        case Strategy::kArq:
          (void)arq->SendData(1, i);
          break;
      }
    });
  }
  simulator.RunAll();

  BoostOutcome out;
  out.delivery = static_cast<double>(delivered) / kWords;
  out.segment_bytes = static_cast<double>(wn.fabric().link_bytes()[1]);
  out.mean_latency_ms = delivered > 0 ? latency_sum_ms / delivered : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("E19 / protocol boosters — 200 words over a lossy segment"
              " (10 replicas per cell)\n\n");
  TablePrinter table({"loss", "strategy", "delivery", "segment bytes",
                      "mean latency"});
  telemetry::BenchReport report("boosters");
  for (double loss : {0.05, 0.15, 0.30}) {
    for (Strategy strategy :
         {Strategy::kNone, Strategy::kFec, Strategy::kArq}) {
      const char* name = strategy == Strategy::kNone
                             ? "none"
                             : (strategy == Strategy::kFec ? "FEC" : "ARQ");
      const auto agg = sim::RunReplicas(
          [strategy, loss](std::size_t, std::uint64_t seed) {
            const BoostOutcome o = RunTrial(strategy, loss, seed);
            return sim::ReplicaMetrics{{"dlv", o.delivery},
                                       {"bytes", o.segment_bytes},
                                       {"lat", o.mean_latency_ms}};
          },
          10, 5100 + static_cast<std::uint64_t>(loss * 100));
      table.AddRow({FormatDouble(loss * 100, 0) + "%", name,
                    FormatDouble(agg.at("dlv").mean * 100, 1) + "%",
                    FormatBytes(static_cast<std::uint64_t>(
                        agg.at("bytes").mean)),
                    FormatDouble(agg.at("lat").mean, 1) + " ms"});
      const std::string suffix =
          std::string("_") + name + "_loss" + FormatDouble(loss * 100, 0);
      report.Set("delivery" + suffix, agg.at("dlv").mean);
      report.Set("latency_ms" + suffix, agg.at("lat").mean);
    }
  }
  table.Print(std::cout);
  (void)report.Write();
  std::printf("\nexpected shape: unboosted delivery tracks (1-loss). FEC"
              " recovers single losses per block for fixed overhead (parity"
              " + framing) and a fixed block-assembly delay, but degrades"
              " at high loss (multi-loss blocks). ARQ approaches 100%%"
              " delivery at every loss rate, with segment bytes and"
              " retransmission latency growing with loss.\n");
  return 0;
}
