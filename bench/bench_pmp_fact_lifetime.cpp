// E7 — PMP Definition 3(3): fact lifetimes.
//
// "Facts have a certain lifetime ... As soon as a fact does not reach its
// frequency threshold, it is deleted. ... Through the exchange and
// generation of new facts, it is possible to modify functions to prolong
// their lifetime. The lifetime of a knowledge quantum is defined by the
// lifetime of its network function."
//
// Reproduction: (a) fact survival across a touch-rate x weight grid against
// the threshold, (b) function/KQ lifetime coupling to fact lifetime, and
// (c) lifetime prolongation through fact exchange between ships.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/facts.h"
#include "core/knowledge.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

int main() {
  std::printf("E7 / PMP fact lifetime dynamics\n\n");
  telemetry::BenchReport report("pmp_fact_lifetime");

  // (a) Survival grid: touch rate x weight, threshold 1.0 Hz.
  {
    wli::FactStoreConfig cfg;
    cfg.frequency_threshold_hz = 1.0;
    cfg.window = 10 * sim::kSecond;
    TablePrinter table({"touch rate", "weight 0.5", "weight 1.0",
                        "weight 2.0", "weight 5.0"});
    for (double rate : {0.2, 0.5, 1.0, 2.0, 4.0}) {
      std::vector<std::string> row{FormatDouble(rate, 1) + " Hz"};
      for (double weight : {0.5, 1.0, 2.0, 5.0}) {
        wli::FactStore store(cfg);
        const auto period = sim::FromSeconds(1.0 / rate);
        // Touch for three windows, sweeping at each boundary.
        bool alive = true;
        sim::TimePoint now = 0;
        for (int window = 0; window < 3 && alive; ++window) {
          const sim::TimePoint window_end = (window + 1) * cfg.window;
          while (now < window_end) {
            if (store.Find(1) != nullptr || window == 0) {
              store.Touch(1, 0, weight, now);
            }
            now += period;
          }
          store.Sweep(window_end);
          alive = store.Find(1) != nullptr;
        }
        row.push_back(alive ? "alive" : "died");
      }
      table.AddRow(row);
    }
    std::printf("(a) fact survival after 3 windows, threshold 1.0 Hz\n");
    table.Print(std::cout);
    std::printf("    (survives iff rate x weight >= threshold)\n");
  }

  // (b) Function lifetime == fact lifetime.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(2);
    wli::WnConfig config;
    config.fact_config.frequency_threshold_hz = 1.0;
    config.fact_config.window = sim::kSecond;
    config.pulse_interval = sim::kSecond;
    wli::WanderingNetwork wn(simulator, topology, config, 3);
    wn.PopulateAllNodes();

    wli::NetFunction fn;
    fn.name = "fact-bound";
    fn.role = node::FirstLevelRole::kFusion;
    fn.fact_keys = {42};
    const auto id = wn.DeployFunction(0, fn);

    // Refresh the fact at 5 Hz for 3 s, then stop.
    for (int i = 0; i < 15; ++i) {
      simulator.ScheduleAt(i * 200 * sim::kMillisecond, [&wn] {
        wn.ship(0)->facts().Touch(42, 1, 1.0, wn.simulator().now());
      });
    }
    wn.StartPulse(8 * sim::kSecond);

    TablePrinter table({"time", "fact 42", "function", "kq alive"});
    for (int second = 1; second <= 7; ++second) {
      simulator.RunUntil(second * sim::kSecond + 1);
      const bool fact_alive = wn.ship(0)->facts().Find(42) != nullptr;
      const bool fn_alive = wn.ship(0)->functions().Find(id) != nullptr;
      wli::KnowledgeQuantum kq;
      kq.function = fn;
      table.AddRow({std::to_string(second) + " s",
                    fact_alive ? "alive" : "dead",
                    fn_alive ? "installed" : "expired",
                    fn_alive ? "yes" : "no"});
    }
    std::printf("\n(b) function/knowledge-quantum lifetime tracks its"
                " facts (refreshed 0-3 s, then abandoned)\n");
    table.Print(std::cout);
  }

  // (c) Prolongation through exchange: a second ship keeps sending the fact
  // in knowledge shuttles, so it outlives the local refresh stopping.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(2);
    wli::WnConfig config;
    config.fact_config.frequency_threshold_hz = 1.0;
    config.fact_config.window = sim::kSecond;
    config.pulse_interval = sim::kSecond;
    wli::WanderingNetwork wn(simulator, topology, config, 9);
    wn.PopulateAllNodes();

    auto send_kq = [&wn] {
      wli::KnowledgeQuantum kq;
      kq.function.id = 1;
      kq.function.name = "carried";
      kq.facts = {{77, 7, 2.0}};
      wli::Shuttle s;
      s.header.source = 1;
      s.header.destination = 0;
      s.header.kind = wli::ShuttleKind::kKnowledge;
      s.genome = wli::EncodeKnowledgeQuantum(kq);
      (void)wn.Inject(std::move(s));
    };
    // Ship 1 transmits the fact at 3 Hz for the whole run.
    for (int i = 0; i < 21; ++i) {
      simulator.ScheduleAt(i * 333 * sim::kMillisecond, send_kq);
    }
    wn.StartPulse(7 * sim::kSecond);
    simulator.RunUntil(7 * sim::kSecond);
    const bool alive = wn.ship(0)->facts().Find(77) != nullptr;
    std::printf("\n(c) lifetime prolongation by exchange: fact 77 on ship 0"
                " after 7 s of remote-only refresh: %s\n",
                alive ? "alive" : "dead");
    std::printf("    kq shuttles absorbed: %llu\n",
                static_cast<unsigned long long>(
                    wn.stats().CounterValue("wn.kq_absorbed")));
    report.Set("fact_alive_after_exchange", alive ? 1.0 : 0.0);
    report.Set("kq_absorbed",
               static_cast<double>(wn.stats().CounterValue("wn.kq_absorbed")));
  }
  (void)report.Write();

  std::printf("\nexpected shape: survival follows rate x weight vs"
              " threshold; functions die exactly when their facts do;"
              " exchanged facts live on.\n");
  return 0;
}
