// E17 — knowledge dissemination (PMP Def. 3(2)): knowledge quanta
// "distributed throughout the Wandering Network in an arbitrary manner".
//
// Epidemic anti-entropy over knowledge shuttles: one seeded fact; measure
// rounds to reach 50% / 100% coverage and the shuttle cost, sweeping the
// gossip fanout and network size. Classic epidemic shape expected:
// convergence time ~ O(log N / fanout), cost ~ O(N · fanout · rounds).
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/gossip.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct GossipOutcome {
  double rounds_to_half = -1;
  double rounds_to_full = -1;
  double shuttles = 0;
};

GossipOutcome RunTrial(std::size_t ships, std::size_t fanout,
                       std::uint64_t seed) {
  sim::Simulator simulator;
  Rng topo_rng(seed);
  net::Topology topology = net::MakeRandom(ships, 0.15, topo_rng);
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, seed ^ 0xabc);
  wn.PopulateAllNodes();
  wn.ship(0)->facts().Touch(42, 7, 10.0, 0);

  services::GossipService::Config cfg;
  cfg.interval = 100 * sim::kMillisecond;
  cfg.fanout = fanout;
  services::GossipService gossip(wn, cfg, Rng(seed * 3 + 1));

  GossipOutcome out;
  for (int round = 1; round <= 200; ++round) {
    gossip.RunRound();
    simulator.RunAll();
    const double coverage = gossip.Coverage(42);
    if (out.rounds_to_half < 0 && coverage >= 0.5) {
      out.rounds_to_half = round;
    }
    if (coverage >= 1.0) {
      out.rounds_to_full = round;
      break;
    }
  }
  out.shuttles = static_cast<double>(gossip.shuttles_sent());
  return out;
}

}  // namespace

int main() {
  std::printf("E17 / epidemic knowledge dissemination — rounds to coverage"
              " (random graphs, 10 replicas per cell)\n\n");
  TablePrinter table({"ships", "fanout", "rounds to 50%", "rounds to 100%",
                      "kq shuttles"});
  telemetry::BenchReport report("gossip");
  for (std::size_t ships : {16u, 32u, 64u}) {
    for (std::size_t fanout : {1u, 2u, 4u}) {
      const auto agg = sim::RunReplicas(
          [ships, fanout](std::size_t, std::uint64_t seed) {
            const GossipOutcome o = RunTrial(ships, fanout, seed);
            return sim::ReplicaMetrics{{"half", o.rounds_to_half},
                                       {"full", o.rounds_to_full},
                                       {"shuttles", o.shuttles}};
          },
          10, 31000 + ships * 10 + fanout);
      table.AddRow({std::to_string(ships), std::to_string(fanout),
                    FormatDouble(agg.at("half").mean, 1),
                    FormatDouble(agg.at("full").mean, 1),
                    FormatDouble(agg.at("shuttles").mean, 0)});
      const std::string suffix =
          "_s" + std::to_string(ships) + "_f" + std::to_string(fanout);
      report.Set("rounds_to_full" + suffix, agg.at("full").mean);
      report.Set("kq_shuttles" + suffix, agg.at("shuttles").mean);
    }
  }
  table.Print(std::cout);
  (void)report.Write();
  std::printf("\nexpected shape: rounds grow logarithmically with network"
              " size and shrink with fanout; shuttle cost grows with both"
              " — the dissemination/overhead trade of Def. 3(2).\n");
  return 0;
}
