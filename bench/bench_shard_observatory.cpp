// bench_shard_observatory — the perf-plane gate (docs/PERF.md).
//
// Three phases over one seeded sharded workload (4 row bands of a grid,
// traffic deliberately skewed into band 2):
//
//  1. ReplayNeutrality: counters-off, counters-on and counters-on-4-threads
//     runs must produce bit-identical decisions — same per-window journal
//     hash timeline, same rolling digest, same final state hash, same
//     event/handoff counts. The perf plane observes; it must never steer.
//  2. Straggler detection: the Shard Observatory's report must name the
//     injected hot shard (band 2) as hot_shard_by_events, with a load
//     imbalance index well away from 1.0. These values are deterministic
//     (pure functions of seed + plan), so they are pinned against
//     bench/baselines/BENCH_shard_observatory.json by the CI gate.
//  3. Overhead: best-of-N wall time with counters runtime-off vs runtime-on.
//     The enabled overhead must stay under 3% — enforced when
//     VIATOR_REQUIRE_OVERHEAD is set (CI Release), recorded always. The
//     compiled-out cost is exactly zero by construction: the probe macros
//     expand to nothing (tests/test_perf_compiled_out.cpp proves no probe
//     can fire with -DVIATOR_PERF_COUNTERS=0).
//
// Exit nonzero on any contract violation; wall metrics carry "wall" in
// their names so the bench gate ignores them.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <vector>

#include "base/rng.h"
#include "net/topology.h"
#include "shard/plan.h"
#include "shard/sharded_network.h"
#include "telemetry/bench_report.h"
#include "telemetry/perf_stats.h"
#include "telemetry/shard_metrics.h"

namespace {

using namespace viator;

std::size_t EnvOr(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

struct Workload {
  std::size_t side = 32;
  std::size_t rounds = 16;
  std::size_t per_round = 192;
  std::size_t windows_per_round = 4;
  std::uint64_t seed = 0xB5EED;
};

struct RunOutcome {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t state_hash = 0;
  std::uint64_t rolling_digest = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> window_hashes;
  telemetry::StragglerReport report;
};

/// One full run: 4 row bands, three of four shuttles confined to band 2
/// (the injected hot shard), hash_every = 1 so the journal timeline is the
/// neutrality witness. The timed region spans injection + windows + drain —
/// structurally identical for every counter setting and thread count.
RunOutcome RunWorkload(const Workload& w, bool counters_on,
                       std::size_t threads) {
  telemetry::perf::ResetAll();
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = threads;
  config.seed = w.seed;
  config.hash_every = 1;
  config.assignment = shard::GridRowBands(w.side, w.side, 4);
  net::Topology grid = net::MakeGrid(w.side, w.side);
  shard::ShardedNetwork world(grid, config);

  const std::uint64_t nodes = w.side * w.side;
  const std::uint64_t band_rows = w.side / 4;
  const std::uint64_t hot_lo = 2 * band_rows * w.side;
  const std::uint64_t hot_hi = 3 * band_rows * w.side - 1;
  Rng traffic(w.seed ^ 0x0B5E70A1ULL);

  telemetry::perf::SetEnabled(counters_on);
  const std::clock_t cpu_start = std::clock();
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t flow = 1;
  for (std::size_t round = 0; round < w.rounds; ++round) {
    for (std::size_t i = 0; i < w.per_round; ++i) {
      const bool hot = (i % 4) != 0;
      const std::uint64_t lo = hot ? hot_lo : 0;
      const std::uint64_t hi = hot ? hot_hi : nodes - 1;
      const auto src = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      auto dst = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      if (dst == src) dst = static_cast<net::NodeId>(lo + (dst - lo + 1) %
                                                              (hi - lo + 1));
      (void)world.Inject(src, dst,
                         {static_cast<std::int64_t>(round),
                          static_cast<std::int64_t>(i)},
                         flow++);
    }
    world.RunWindows(w.windows_per_round);
  }
  world.RunUntilQuiescent();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::clock_t cpu_end = std::clock();
  telemetry::perf::SetEnabled(false);

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(elapsed).count();
  out.cpu_seconds =
      static_cast<double>(cpu_end - cpu_start) / CLOCKS_PER_SEC;
  out.events = world.total_dispatched();
  out.handoffs = world.stats().CounterValue("shard.handoffs");
  out.state_hash = world.StateHash();
  out.rolling_digest = world.journal().rolling_digest();
  out.window_hashes = world.journal().window_hashes();
  out.report = world.observatory().Report();
  return out;
}

bool SameDecisions(const RunOutcome& a, const RunOutcome& b,
                   const char* label) {
  bool ok = true;
  if (a.events != b.events || a.handoffs != b.handoffs) {
    std::fprintf(stderr,
                 "neutrality[%s]: counters changed workload totals "
                 "(events %llu vs %llu, handoffs %llu vs %llu)\n",
                 label, static_cast<unsigned long long>(a.events),
                 static_cast<unsigned long long>(b.events),
                 static_cast<unsigned long long>(a.handoffs),
                 static_cast<unsigned long long>(b.handoffs));
    ok = false;
  }
  if (a.state_hash != b.state_hash) {
    std::fprintf(stderr, "neutrality[%s]: final state hash diverged\n", label);
    ok = false;
  }
  if (a.rolling_digest != b.rolling_digest) {
    std::fprintf(stderr, "neutrality[%s]: journal digest diverged\n", label);
    ok = false;
  }
  if (a.window_hashes != b.window_hashes) {
    std::fprintf(stderr,
                 "neutrality[%s]: per-window hash timeline diverged "
                 "(%zu vs %zu windows)\n",
                 label, a.window_hashes.size(), b.window_hashes.size());
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  Workload w;
  w.side = EnvOr("VIATOR_OBS_SIDE", w.side);
  w.rounds = EnvOr("VIATOR_OBS_ROUNDS", w.rounds);
  w.per_round = EnvOr("VIATOR_OBS_LOAD", w.per_round);
  const bool require_overhead = std::getenv("VIATOR_REQUIRE_OVERHEAD") != nullptr;
  // Container wall-clock jitter runs a few percent; when the 3% gate is
  // armed take more samples so best-of-N converges on the true floor.
  const std::size_t reps = EnvOr("VIATOR_OBS_REPS", require_overhead ? 5 : 3);

  telemetry::BenchReport report("shard_observatory");
  report.Set("observatory.grid_side", static_cast<double>(w.side));
  report.Set("observatory.rounds", static_cast<double>(w.rounds));
  report.Set("observatory.load", static_cast<double>(w.per_round));
  bool ok = true;

  // ---- Phase 1: ReplayNeutrality --------------------------------------
  (void)RunWorkload(w, false, 1);  // warmup: page-in, branch training
  const RunOutcome off = RunWorkload(w, /*counters_on=*/false, /*threads=*/1);
  const RunOutcome on = RunWorkload(w, /*counters_on=*/true, /*threads=*/1);
  const RunOutcome on4 = RunWorkload(w, /*counters_on=*/true, /*threads=*/4);
  ok &= SameDecisions(off, on, "on-vs-off");
  ok &= SameDecisions(off, on4, "t4-vs-t1");
  std::printf("neutrality: %llu events, %llu handoffs, %zu hashed windows — "
              "%s\n",
              static_cast<unsigned long long>(off.events),
              static_cast<unsigned long long>(off.handoffs),
              off.window_hashes.size(), ok ? "bit-identical" : "DIVERGED");
  report.Set("observatory.events", static_cast<double>(off.events));
  report.Set("observatory.handoffs", static_cast<double>(off.handoffs));
  report.Set("observatory.hashed_windows",
             static_cast<double>(off.window_hashes.size()));

  // ---- Phase 2: straggler / imbalance detection -----------------------
  const telemetry::StragglerReport& straggler = on.report;
  std::printf("%s", straggler.Format().c_str());
  report.Set("observatory.hot_shard",
             static_cast<double>(straggler.hot_shard_by_events));
  report.Set("observatory.imbalance_events", straggler.imbalance_events);
  report.Set("observatory.report_windows",
             static_cast<double>(straggler.windows));
  if (straggler.hot_shard_by_events != 2) {
    std::fprintf(stderr,
                 "straggler report missed the injected hot shard: named %u, "
                 "expected 2\n",
                 straggler.hot_shard_by_events);
    ok = false;
  }
  if (straggler.imbalance_events < 1.5) {
    std::fprintf(stderr,
                 "imbalance index %.3f too close to balanced for a 3:1 "
                 "skewed workload\n",
                 straggler.imbalance_events);
    ok = false;
  }

  // ---- Phase 3: enabled overhead --------------------------------------
  // Shared-runner wall clocks drift by double-digit percentages, so the
  // gate rides on process CPU time of adjacent off/on pairs: preemption
  // cannot inflate CPU time, and slow drift (throttling, frequency steps)
  // hits both halves of a pair and cancels in the ratio. Median of the
  // pair ratios, single-threaded so the measurement is the probe cost,
  // not pool jitter. Wall numbers ride along for the trend artifact.
  double best_off = off.seconds;
  double best_on = on.seconds;
  std::vector<double> cpu_ratios;
  if (off.cpu_seconds > 0.0) cpu_ratios.push_back(on.cpu_seconds /
                                                  off.cpu_seconds);
  for (std::size_t rep = 1; rep < reps; ++rep) {
    const RunOutcome rep_off = RunWorkload(w, false, 1);
    const RunOutcome rep_on = RunWorkload(w, true, 1);
    best_off = std::min(best_off, rep_off.seconds);
    best_on = std::min(best_on, rep_on.seconds);
    if (rep_off.cpu_seconds > 0.0) {
      cpu_ratios.push_back(rep_on.cpu_seconds / rep_off.cpu_seconds);
    }
  }
  std::sort(cpu_ratios.begin(), cpu_ratios.end());
  const double median_ratio =
      cpu_ratios.empty() ? 1.0 : cpu_ratios[cpu_ratios.size() / 2];
  // The gate statistic is the MINIMUM pair ratio: a genuine probe-cost
  // regression lifts every pair, so the min rises with it, while runner
  // noise (which swings individual pairs either way) cannot push the min
  // up. The median is the better point estimate and rides along.
  const double min_ratio = cpu_ratios.empty() ? 1.0 : cpu_ratios.front();
  const double overhead_pct = (min_ratio - 1.0) * 100.0;
  const double median_pct = (median_ratio - 1.0) * 100.0;
  const double wall_pct =
      best_off > 0.0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  std::printf("overhead: cpu %+.2f%% min / %+.2f%% median of %zu pairs, "
              "wall best-of-%zu %+.2f%% (compiled-out is 0 by construction)\n",
              overhead_pct, median_pct, cpu_ratios.size(), reps, wall_pct);
  report.Set("overhead.wall_off_seconds", best_off);
  report.Set("overhead.wall_on_seconds", best_on);
  report.Set("overhead.wall_pct", wall_pct);
  report.Set("overhead.cpu_min_pct_seconds", overhead_pct);
  report.Set("overhead.cpu_median_pct_seconds", median_pct);
  if (require_overhead && overhead_pct >= 3.0) {
    std::fprintf(stderr, "perf plane overhead %.2f%% breaches the 3%% gate\n",
                 overhead_pct);
    ok = false;
  }

  telemetry::perf::ResetAll();
  (void)report.Write();
  return ok ? 0 : 1;
}
