// E3 — Figure 2: "A ship's internal organization" — first/second-level
// profiling, one EE per function, modal vs auxiliary priority, and the
// reconfiguration/programming path along the bottom of the figure.
//
// Reproduction: measures (a) role-switch latency per switch mechanism,
// (b) EE dispatch cost and per-class accounting across the whole
// second-level profile, (c) the modal-priority effect, and (d) hardware
// acceleration after a netbot dock.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "node/node_os.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

int main() {
  std::printf("E3 / Figure 2 — intra-node profiling and reconfiguration\n\n");
  telemetry::BenchReport report("fig2_profiling");

  // (a) Role-switch latency per mechanism, across all first-level roles.
  {
    TablePrinter table({"switch mechanism", "latency", "gated by"});
    node::NodeOs os(node::ResourceQuota{},
                    node::Capabilities::ForGeneration(4));
    const struct {
      node::SwitchMechanism mechanism;
      const char* gate;
    } mechanisms[] = {
        {node::SwitchMechanism::kResidentSoftware, "1G+"},
        {node::SwitchMechanism::kTransportedCode, "1G+ (EE programmable)"},
        {node::SwitchMechanism::kHardwareReconfig, "3G+"},
        {node::SwitchMechanism::kNetbotDock, "3G+"},
    };
    for (const auto& m : mechanisms) {
      const auto latency = os.RequestRoleSwitch(
          node::FirstLevelRole::kFusion, m.mechanism);
      table.AddRow({std::string(node::SwitchMechanismName(m.mechanism)),
                    FormatNanos(*latency), m.gate});
    }
    std::printf("(a) first-level role switch latency by mechanism\n");
    table.Print(std::cout);
  }

  // (b) One EE per second-level class: run the same capsule through each
  // class's registry EE and report per-EE accounting.
  {
    node::NodeOs os(node::ResourceQuota{},
                    node::Capabilities::ForGeneration(4));
    auto program = vm::Assemble("work", R"(
  push 64
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  jmp loop
done:
  halt
)");
    vm::Environment host;
    constexpr int kInvocations = 200;
    TablePrinter table({"second-level class (EE)", "invocations", "fuel",
                        "fuel/invocation"});
    for (int c = 0; c < static_cast<int>(node::SecondLevelClass::kClassCount);
         ++c) {
      const auto cls = static_cast<node::SecondLevelClass>(c);
      auto& ee = os.GetOrCreateEe(cls);
      for (int i = 0; i < kInvocations; ++i) {
        os.resources().BeginEpoch();
        (void)ee.Execute(*program, host, os.resources());
      }
      table.AddRow({std::string(node::SecondLevelClassName(cls)),
                    std::to_string(ee.invocations()),
                    std::to_string(ee.fuel_consumed()),
                    FormatDouble(static_cast<double>(ee.fuel_consumed()) /
                                     static_cast<double>(ee.invocations()),
                                 1)});
    }
    std::printf("\n(b) registry execution environments, one per class"
                " (%zu EEs created)\n",
                os.ee_count());
    table.Print(std::cout);
  }

  // (c) Modal vs auxiliary: modal functions get priority access to their EE
  // — modelled as admission headroom. With a tight epoch budget the modal
  // class keeps running while the auxiliary one is rejected.
  {
    node::ResourceQuota quota;
    quota.fuel_per_capsule = 100;
    quota.fuel_per_epoch = 100;  // admission headroom for exactly one capsule
    node::NodeOs os(quota, node::Capabilities::ForGeneration(4));
    auto program = vm::Assemble("tiny", "push 1\nhalt\n");
    vm::Environment host;
    auto& modal = os.GetOrCreateEe(node::SecondLevelClass::kFiltering,
                                   node::RoleBinding::kModal);
    auto& aux = os.GetOrCreateEe(node::SecondLevelClass::kSupplementary,
                                 node::RoleBinding::kAuxiliary);
    int modal_ok = 0, aux_ok = 0;
    for (int epoch = 0; epoch < 50; ++epoch) {
      os.resources().BeginEpoch();
      // Modal dispatched first each epoch (priority), auxiliary second.
      modal_ok += modal.Execute(*program, host, os.resources()).ok();
      aux_ok += aux.Execute(*program, host, os.resources()).ok();
    }
    TablePrinter table({"binding", "admitted", "rejected"});
    table.AddRow({"modal (priority)", std::to_string(modal_ok),
                  std::to_string(50 - modal_ok)});
    table.AddRow({"auxiliary", std::to_string(aux_ok),
                  std::to_string(50 - aux_ok)});
    std::printf("\n(c) modal-priority under a constrained epoch budget\n");
    table.Print(std::cout);
  }

  // (d) Hardware plane: service time for the transcoding class before and
  // after a netbot dock (speedup applies once the driver is active).
  {
    node::NodeOs os(node::ResourceQuota{},
                    node::Capabilities::ForGeneration(3));
    const double before =
        os.hardware().SpeedupFor(node::SecondLevelClass::kTranscoding);
    auto driver = vm::Assemble("xcode-driver", "push 1\nhalt\n");
    node::Netbot bot;
    bot.module = {1, "xcode", node::SecondLevelClass::kTranscoding, 30000,
                  6.0, driver->digest()};
    bot.driver_image = driver->Serialize();
    const auto dock = os.DockNetbot(bot);
    const double after =
        os.hardware().SpeedupFor(node::SecondLevelClass::kTranscoding);
    TablePrinter table({"stage", "transcode speedup", "note"});
    table.AddRow({"software only", FormatDouble(before, 1), ""});
    table.AddRow({"after netbot dock", FormatDouble(after, 1),
                  "dock latency " + FormatNanos(*dock)});
    std::printf("\n(d) plug-and-play hardware acceleration (netbot)\n");
    table.Print(std::cout);
    report.Set("transcode_speedup_before", before);
    report.Set("transcode_speedup_after", after);
    report.Set("netbot_dock_ns", static_cast<double>(*dock));
  }

  std::printf("\nexpected shape: resident-sw << transported-code <<"
              " hw-reconfig < netbot-dock; modal wins under pressure;"
              " hardware speedup only after driver sync.\n");
  (void)report.Write();
  return 0;
}
