// E2 — Figure 1: "A Wandering Network" — an evolutionary, always-under-
// construction network where node shapes (functions) change over time.
//
// Reproduction: a 32-ship random network under a workload whose demand
// hotspots rotate across roles and regions every epoch. The series reported
// is the quantitative counterpart of the figure: role census, Shannon role
// diversity, migrations and emerged functions per epoch.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

int main() {
  constexpr std::size_t kShips = 32;
  constexpr int kEpochs = 10;
  const sim::Duration kEpoch = sim::kSecond;

  sim::Simulator simulator;
  Rng rng(2002);
  net::Topology topology = net::MakeRandom(kShips, 0.12, rng);

  wli::WnConfig config;
  config.pulse_interval = 250 * sim::kMillisecond;
  config.horizontal.hysteresis = 1.3;
  config.resonance.min_support = 4;
  wli::WanderingNetwork wn(simulator, topology, config, 2002);
  wn.PopulateAllNodes();

  // Seed one function per first-level role at random hosts.
  for (int r = 0; r < static_cast<int>(node::FirstLevelRole::kRoleCount);
       ++r) {
    wli::NetFunction fn;
    fn.role = static_cast<node::FirstLevelRole>(r);
    fn.name = std::string(node::FirstLevelRoleName(fn.role));
    wn.DeployFunction(static_cast<net::NodeId>(rng.Index(kShips)), fn);
  }

  // Workload: each epoch picks a hot region and a hot role; ships there see
  // demand and share correlated facts (driving resonance).
  Rng workload_rng = rng.Fork();
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    simulator.ScheduleAt(epoch * kEpoch, [&wn, &workload_rng, epoch] {
      const auto role = static_cast<node::FirstLevelRole>(
          workload_rng.Index(static_cast<std::size_t>(
              node::FirstLevelRole::kRoleCount)));
      const auto center =
          static_cast<net::NodeId>(workload_rng.Index(kShips));
      // Demand pulse at the hot node and its neighborhood.
      for (int burst = 0; burst < 30; ++burst) {
        wn.demand().Record(center, role, 1.0);
      }
      for (net::NodeId n : wn.topology().Neighbors(center)) {
        for (int burst = 0; burst < 10; ++burst) {
          wn.demand().Record(n, role, 1.0);
        }
        // Correlated facts across the neighborhood (network resonance).
        const wli::FactKey base = 1000 + epoch * 10;
        for (int rep = 0; rep < 8; ++rep) {
          wn.ship(n)->facts().Touch(base, epoch, 4.0,
                                    wn.simulator().now());
          wn.ship(n)->facts().Touch(base + 1, epoch, 4.0,
                                    wn.simulator().now());
        }
      }
    });
  }

  std::printf("E2 / Figure 1 — functional evolution of a %zu-ship wandering"
              " network over %d epochs\n\n",
              kShips, kEpochs);
  TablePrinter table({"epoch", "diversity(bits)", "roles-active",
                      "migrations", "emerged-fns", "facts-expired",
                      "overlays"});

  wn.StartPulse(kEpochs * kEpoch);
  std::uint64_t last_migrations = 0;
  std::uint64_t last_emerged = 0;
  std::uint64_t last_expired = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    simulator.RunUntil((epoch + 1) * kEpoch);
    const auto census = wn.RoleCensus();
    std::size_t active_roles = 0;
    for (const auto& [role, count] : census) active_roles += count > 0;
    const std::uint64_t migrations = wn.migrations_executed();
    const std::uint64_t emerged = wn.functions_emerged();
    const std::uint64_t expired =
        wn.stats().CounterValue("wn.facts_expired");
    table.AddRow({std::to_string(epoch),
                  FormatDouble(wn.RoleDiversity(), 3),
                  std::to_string(active_roles),
                  std::to_string(migrations - last_migrations),
                  std::to_string(emerged - last_emerged),
                  std::to_string(expired - last_expired),
                  std::to_string(wn.overlays().overlays().size())});
    last_migrations = migrations;
    last_emerged = emerged;
    last_expired = expired;
  }
  table.Print(std::cout);

  std::printf("\nfinal role census:\n");
  for (const auto& [role, count] : wn.RoleCensus()) {
    std::printf("  %-12s %zu ships\n",
                std::string(node::FirstLevelRoleName(role)).c_str(), count);
  }
  std::printf("\nexpected shape: diversity grows from 0 (uniform caching"
              " default) and the census keeps shifting — the network is"
              " 'always under construction'.\n");

  telemetry::BenchReport report("fig1_evolution");
  report.Set("final_diversity_bits", wn.RoleDiversity());
  report.Set("migrations", static_cast<double>(wn.migrations_executed()));
  report.Set("functions_emerged", static_cast<double>(wn.functions_emerged()));
  report.AddCounters(wn.stats());
  (void)report.Write();
  return 0;
}
