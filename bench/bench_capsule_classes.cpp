// E6 — §D capsule mechanism classes (Wetherall & Tennenhouse): fusion,
// fission, caching, delegation — each measured against the passive
// (endpoint-only) baseline on the same fabric.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "baselines/passive.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/caching.h"
#include "services/combining.h"
#include "services/delegation.h"
#include "services/fission.h"
#include "services/fusion.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct Net {
  sim::Simulator simulator;
  net::Topology topology;
  std::unique_ptr<wli::WanderingNetwork> wn;

  explicit Net(std::size_t line_nodes, sim::Duration latency = sim::kMillisecond) {
    net::LinkConfig link;
    link.latency = latency;
    topology = net::MakeLine(line_nodes, link);
    wli::WnConfig config;
    wn = std::make_unique<wli::WanderingNetwork>(simulator, topology, config,
                                                 101);
    wn->PopulateAllNodes();
  }
};

}  // namespace

int main() {
  std::printf("E6 / capsule mechanism classes vs passive baseline\n\n");
  telemetry::BenchReport report("capsule_classes");

  // --- Fusion: bytes over the downstream path, window sweep ---
  {
    TablePrinter table({"fusion window", "bytes in", "bytes out",
                        "reduction"});
    for (std::uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
      Net net(5);
      services::FusionService::Config cfg;
      cfg.sink = 4;
      cfg.window = window;
      services::FusionService fusion(*net.wn, 2, cfg);
      for (int i = 0; i < 64; ++i) {
        std::vector<std::int64_t> reading(16, i);
        (void)net.wn->Inject(wli::Shuttle::Data(0, 2, reading, 1));
      }
      net.simulator.RunAll();
      table.AddRow({std::to_string(window),
                    FormatBytes(fusion.bytes_in()),
                    FormatBytes(fusion.bytes_out()),
                    FormatDouble(fusion.ReductionFactor(), 2) + "x"});
    }
    std::printf("(a) fusion: in-network aggregation, 64 readings of"
                " 16 words (passive = window 1 shape)\n");
    table.Print(std::cout);
  }

  // --- Fission: upstream link bytes, receiver-count sweep ---
  {
    TablePrinter table({"receivers", "multicast upstream", "unicast upstream",
                        "savings"});
    for (std::size_t receivers : {2u, 4u, 8u, 16u}) {
      // Star around the fission node at the end of a 3-hop upstream line.
      auto build = [&]() {
        net::Topology t = net::MakeLine(4);
        const net::NodeId first_leaf = t.AddNodes(receivers);
        for (std::size_t r = 0; r < receivers; ++r) {
          t.AddLink(3, static_cast<net::NodeId>(first_leaf + r));
        }
        return t;
      };
      const std::vector<std::int64_t> content(64, 7);

      // Active: multicast via fission at node 3.
      sim::Simulator sim_a;
      net::Topology topo_a = build();
      wli::WnConfig config;
      wli::WanderingNetwork wn_a(sim_a, topo_a, config, 1);
      wn_a.PopulateAllNodes();
      services::FissionService fission(wn_a, 3);
      for (std::size_t r = 0; r < receivers; ++r) {
        fission.Subscribe(1, static_cast<net::NodeId>(4 + r));
      }
      (void)wn_a.Inject(wli::Shuttle::Data(0, 3, content, 1));
      sim_a.RunAll();
      std::uint64_t multicast_up = 0;
      for (net::LinkId l = 0; l < 3; ++l) {
        multicast_up += wn_a.fabric().link_bytes()[l];
      }

      // Passive: unicast to each receiver.
      sim::Simulator sim_p;
      net::Topology topo_p = build();
      wli::WanderingNetwork wn_p(sim_p, topo_p, config, 1);
      wn_p.PopulateAllNodes();
      baselines::PassiveEndpoints passive(wn_p);
      std::vector<net::NodeId> leaves;
      for (std::size_t r = 0; r < receivers; ++r) {
        leaves.push_back(static_cast<net::NodeId>(4 + r));
      }
      passive.UnicastToAll(0, leaves, content, 1);
      sim_p.RunAll();
      std::uint64_t unicast_up = 0;
      for (net::LinkId l = 0; l < 3; ++l) {
        unicast_up += wn_p.fabric().link_bytes()[l];
      }

      table.AddRow({std::to_string(receivers), FormatBytes(multicast_up),
                    FormatBytes(unicast_up),
                    FormatDouble(static_cast<double>(unicast_up) /
                                     static_cast<double>(multicast_up),
                                 1) +
                        "x"});
    }
    std::printf("\n(b) fission: upstream bytes for one 64-word message"
                " (3-hop backbone then star)\n");
    table.Print(std::cout);
  }

  // --- Caching: request latency cold/warm + hit ratio under Zipf ---
  {
    TablePrinter table({"cache objects", "hit ratio", "mean latency (cache)",
                        "mean latency (no cache)"});
    for (std::size_t capacity : {4u, 16u, 64u}) {
      Net net(7, 5 * sim::kMillisecond);  // client 0, cache 2, origin 6
      services::ContentOrigin origin(*net.wn, 6, 32);
      services::CachingService cache(*net.wn, 2, 6, capacity);
      Rng rng(capacity);
      double total_latency = 0.0;
      int replies = 0;
      sim::TimePoint sent_at = 0;
      net.wn->ship(0)->SetDeliverySink(
          [&](wli::Ship&, const wli::Shuttle& s) {
            if (!s.payload.empty() && s.payload[0] == services::kCacheOpData) {
              total_latency += sim::ToSeconds(net.simulator.now() - sent_at);
              ++replies;
            }
          });
      constexpr int kRequests = 300;
      for (int i = 0; i < kRequests; ++i) {
        const auto content = static_cast<std::int64_t>(rng.Zipf(100, 1.1));
        sent_at = net.simulator.now();
        (void)net.wn->Inject(wli::Shuttle::Data(
            0, 2, {services::kCacheOpGet, content}, i));
        net.simulator.RunAll();
      }
      // No-cache latency: client -> origin directly (6 hops each way).
      Net raw(7, 5 * sim::kMillisecond);
      services::ContentOrigin raw_origin(*raw.wn, 6, 32);
      // Direct GET to origin: role handler at 6 answers with kCacheOpData.
      double raw_latency = 0.0;
      int raw_replies = 0;
      sim::TimePoint raw_sent = 0;
      raw.wn->ship(0)->SetDeliverySink(
          [&](wli::Ship&, const wli::Shuttle& s) {
            if (!s.payload.empty() && s.payload[0] == services::kCacheOpData) {
              raw_latency += sim::ToSeconds(raw.simulator.now() - raw_sent);
              ++raw_replies;
            }
          });
      for (int i = 0; i < 20; ++i) {
        raw_sent = raw.simulator.now();
        (void)raw.wn->Inject(
            wli::Shuttle::Data(0, 6, {services::kCacheOpGet, i}, i));
        raw.simulator.RunAll();
      }
      table.AddRow(
          {std::to_string(capacity),
           FormatDouble(cache.HitRatio() * 100, 1) + "%",
           FormatDouble(total_latency / replies * 1e3, 1) + " ms",
           FormatDouble(raw_latency / raw_replies * 1e3, 1) + " ms"});
    }
    std::printf("\n(c) caching: 300 Zipf(1.1) requests over 100 objects,"
                " cache at hop 2 of 6\n");
    table.Print(std::cout);
  }

  // --- Delegation: RTT while the user roams, nomadic vs pinned ---
  {
    TablePrinter table({"user distance from origin", "nomadic rtt",
                        "pinned rtt"});
    for (net::NodeId distance : {1u, 3u, 5u, 7u}) {
      auto measure = [&](bool nomadic) {
        Net net(9, 5 * sim::kMillisecond);
        services::NomadicDelegation::Config cfg;
        cfg.max_distance_hops = nomadic ? 0 : 1000;
        services::NomadicDelegation service(*net.wn, 0, cfg);
        sim::TimePoint reply_at = 0;
        net.wn->ship(distance)->SetDeliverySink(
            [&](wli::Ship&, const wli::Shuttle& s) {
              if (!s.payload.empty() &&
                  s.payload[0] == services::kDelegationReply) {
                reply_at = net.simulator.now();
              }
            });
        service.UserMovedTo(distance);
        net.simulator.RunAll();
        const sim::TimePoint sent = net.simulator.now();
        (void)service.SendRequest(distance, 1);
        net.simulator.RunAll();
        return sim::ToSeconds(reply_at - sent) * 1e3;
      };
      table.AddRow({std::to_string(distance) + " hops",
                    FormatDouble(measure(true), 1) + " ms",
                    FormatDouble(measure(false), 1) + " ms"});
    }
    std::printf("\n(d) delegation: unified-messaging RTT as the user roams"
                " (5 ms links)\n");
    table.Print(std::cout);
  }

  // --- Combining: cross-flow mux savings vs batch size ---
  {
    TablePrinter table({"mux batch", "bytes in", "bytes out", "savings"});
    for (std::size_t batch : {2u, 4u, 8u, 16u}) {
      Net net(5);
      services::CombiningService::Config cfg;
      cfg.sink = 4;
      cfg.batch_size = batch;
      services::CombiningService combiner(*net.wn, 2, cfg);
      // 32 one-word shuttles across 32 flows.
      for (int i = 0; i < 32; ++i) {
        (void)net.wn->Inject(wli::Shuttle::Data(0, 2, {i}, i + 1));
      }
      net.simulator.RunAll();
      table.AddRow({std::to_string(batch),
                    FormatBytes(combiner.bytes_in()),
                    FormatBytes(combiner.bytes_out()),
                    FormatDouble(100.0 * combiner.BytesSaved() /
                                     static_cast<double>(combiner.bytes_in()),
                                 1) +
                        "%"});
      report.Set("mux_savings_pct_batch" + std::to_string(batch),
                 100.0 * combiner.BytesSaved() /
                     static_cast<double>(combiner.bytes_in()));
    }
    std::printf("\n(e) combining: cross-flow multiplexing of 32 one-word"
                " shuttles toward one sink\n");
    table.Print(std::cout);
  }

  std::printf("\nexpected shape: every class beats its passive counterpart,"
              " with the gap growing in window size / receiver count /"
              " popularity skew / roam distance / mux batch respectively.\n");
  (void)report.Write();
  return 0;
}
