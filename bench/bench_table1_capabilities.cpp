// E1 — Table 1: "Open enhancements to the AN concept".
//
// The paper's only table is qualitative: which extra capabilities active
// nodes and active packets *could* have beyond the ANTS reference model.
// This harness demonstrates each enhancement end-to-end in the simulator and
// reports its measured cost, producing a quantified version of Table 1.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "services/security_mgmt.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

namespace {

struct Row {
  const char* side;
  const char* enhancement;
  std::string mechanism;
  std::string cost;
  bool demonstrated;
};

std::string Nanos(sim::Duration d) { return FormatNanos(d); }

}  // namespace

int main() {
  std::vector<Row> rows;

  // --- Active node: structure re-configured with time (all mechanisms) ---
  {
    node::NodeOs os(node::ResourceQuota{}, node::Capabilities::ForGeneration(4));
    const auto sw = os.RequestRoleSwitch(node::FirstLevelRole::kFusion,
                                         node::SwitchMechanism::kResidentSoftware);
    const auto tc = os.RequestRoleSwitch(node::FirstLevelRole::kFission,
                                         node::SwitchMechanism::kTransportedCode);
    const auto hw = os.RequestRoleSwitch(node::FirstLevelRole::kCaching,
                                         node::SwitchMechanism::kHardwareReconfig);
    rows.push_back({"node", "re-configurable structure", "resident software",
                    Nanos(*sw), sw.ok()});
    rows.push_back({"node", "re-configurable structure", "transported code",
                    Nanos(*tc), tc.ok()});
    rows.push_back({"node", "re-configurable structure",
                    "hardware reconfig (3G)", Nanos(*hw), hw.ok()});
    auto driver = vm::Assemble("driver", "push 1\nhalt\n");
    node::Netbot bot;
    bot.module = {1, "bot", node::SecondLevelClass::kBoosting, 20000, 4.0,
                  driver->digest()};
    bot.driver_image = driver->Serialize();
    const auto dock = os.DockNetbot(bot);
    rows.push_back({"node", "mobile hardware (netbot)", "dock + driver sync",
                    Nanos(*dock), dock.ok()});
  }

  // --- Node: resident program code, multiple code schemes ---
  {
    node::NodeOs os(node::ResourceQuota{}, node::Capabilities::ForGeneration(2));
    auto p1 = vm::Assemble("scheme-a", "push 1\nsys emit\nhalt\n");
    auto p2 = vm::Assemble("scheme-b", "push 2\nsys emit\nhalt\n");
    const bool ok =
        os.AdmitProgram(*p1).ok() && os.AdmitProgram(*p2).ok();
    rows.push_back({"node", "multiple code schemes / classes of service",
                    "verified admission x2",
                    std::to_string(os.code_cache().bytes_used()) + " B cached",
                    ok});
  }

  // --- Node processed by packets; packets processing nodes ---
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(3);
    wli::WnConfig config;
    wli::WanderingNetwork wn(simulator, topology, config, 1);
    wn.PopulateAllNodes();
    auto reconf = vm::Assemble("reconfigure-host", R"(
  push 1          ; FirstLevelRole::kFission
  sys request_role
  sys emit
  halt
)");
    (void)wn.PublishProgram(*reconf, 0);
    wli::Shuttle s = wli::Shuttle::Data(0, 2, {0}, 1);
    s.code_digest = reconf->digest();
    (void)wn.Inject(std::move(s));
    simulator.RunAll();
    const bool switched =
        wn.ship(2)->os().current_role() == node::FirstLevelRole::kFission;
    rows.push_back({"node", "could be processed by packets",
                    "shuttle code switches host role",
                    Nanos(simulator.now()) + " e2e", switched});
    rows.push_back({"packet", "does processing on nodes",
                    "request_role syscall", "1 role switch", switched});
  }

  // --- Packet: carries code, reconfigures itself (morphing) ---
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(2);
    wli::WnConfig config;
    wli::WanderingNetwork wn(simulator, topology, config, 1);
    wn.PopulateAllNodes();
    wn.morphing().SetRequiredInterface(node::ShipClass::kServer, 3);
    wn.morphing().AddAdapter(0, 3, 24, 10 * sim::kMicrosecond);
    wli::Shuttle s = wli::Shuttle::Data(0, 1, {1}, 1);
    const auto before = s.WireSize();
    (void)wn.Inject(std::move(s));
    simulator.RunAll();
    const bool morphed = wn.stats().CounterValue("wn.morphs") == 1;
    rows.push_back({"packet", "processing on itself (morphing)",
                    "interface adapter at dock",
                    "+24 B, " + Nanos(10 * sim::kMicrosecond), morphed});
    (void)before;
  }

  // --- Packet: carries code for AN reconfiguration (code shuttle) ---
  {
    auto program = vm::Assemble("carried", "push 7\nsys emit\nhalt\n");
    wli::Shuttle code;
    code.header.kind = wli::ShuttleKind::kCode;
    code.code_image = program->Serialize();
    wli::Shuttle data = wli::Shuttle::Data(0, 1, {7}, 1);
    rows.push_back(
        {"packet", "carries program code",
         "code shuttle vs data shuttle",
         std::to_string(code.WireSize()) + " B vs " +
             std::to_string(data.WireSize()) + " B",
         true});
  }

  // --- Packet: genetic section (ship genome in shuttle) ---
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeLine(2);
    wli::WnConfig config;
    wli::WanderingNetwork wn(simulator, topology, config, 1);
    wn.PopulateAllNodes();
    wn.ship(0)->facts().Touch(1, 11, 2.0, 0);
    const auto genome = wli::EncodeBlueprint(wn.ship(0)->ToBlueprint());
    rows.push_back({"packet", "carries genetic ship information",
                    "blueprint genome (TLV)",
                    std::to_string(genome.size()) + " B", true});
  }

  // --- Node mobility (ad-hoc ships) ---
  {
    sim::Simulator simulator;
    net::Topology topology;
    topology.AddNodes(12);
    net::RandomWaypointMobility::Config mob_cfg;
    mob_cfg.width_m = 300;
    mob_cfg.height_m = 300;
    mob_cfg.min_speed_mps = 10;
    mob_cfg.max_speed_mps = 20;
    mob_cfg.pause_s = 0;
    net::RandomWaypointMobility mob(12, mob_cfg, Rng(4));
    net::AdhocManager adhoc(simulator, topology, std::move(mob), 120,
                            sim::kSecond, net::LinkConfig{});
    adhoc.Start(20 * sim::kSecond);
    simulator.RunUntil(20 * sim::kSecond);
    rows.push_back({"node", "mobility (wandering ships)",
                    "random waypoint, radio graph",
                    std::to_string(adhoc.link_transitions()) +
                        " link transitions / 20 s",
                    adhoc.link_transitions() > 0});
  }

  std::printf("E1 / Table 1 — open enhancements to the AN concept,"
              " demonstrated and costed\n\n");
  TablePrinter table({"side", "enhancement (Table 1 italics)", "mechanism",
                      "measured cost", "demonstrated"});
  std::size_t demonstrated = 0;
  for (const auto& row : rows) {
    table.AddRow({row.side, row.enhancement, row.mechanism, row.cost,
                  row.demonstrated ? "yes" : "NO"});
    demonstrated += row.demonstrated;
  }
  table.Print(std::cout);
  telemetry::BenchReport report("table1_capabilities");
  report.Set("rows_total", static_cast<double>(rows.size()));
  report.Set("rows_demonstrated", static_cast<double>(demonstrated));
  (void)report.Write();
  return 0;
}
