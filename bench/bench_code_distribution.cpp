// E11 — §B code distribution: "a code distribution mechanism ensures that
// shuttle processing routines are automatically and dynamically transferred
// to the ships where they are required" (the ANTS demand-loading scheme).
//
// Reproduction: (a) cold vs warm execution latency (the cold path pays a
// code-request round trip to the origin), (b) code-cache hit ratio vs cache
// size under a Zipf program population.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

int main() {
  std::printf("E11 / demand code distribution\n\n");
  telemetry::BenchReport report("code_distribution");

  // (a) Cold vs warm path over increasing distance to the origin.
  {
    TablePrinter table({"hops to origin", "cold latency", "warm latency",
                        "cold/warm"});
    for (std::size_t hops : {1u, 2u, 4u, 6u}) {
      sim::Simulator simulator;
      net::LinkConfig link;
      link.latency = 5 * sim::kMillisecond;
      net::Topology topology = net::MakeLine(hops + 1, link);
      wli::WnConfig config;
      wli::WanderingNetwork wn(simulator, topology, config, 3);
      wn.PopulateAllNodes();
      auto program = vm::Assemble("routine", "push 1\nsys emit\nhalt\n");
      (void)wn.PublishProgram(*program, 0);  // origin at node 0

      const net::NodeId executor = static_cast<net::NodeId>(hops);
      auto measure = [&]() {
        std::uint64_t executions = wn.ship(executor)->code_executions();
        const sim::TimePoint start = simulator.now();
        wli::Shuttle s = wli::Shuttle::Data(executor, executor, {1}, 1);
        s.code_digest = program->digest();
        (void)wn.Inject(std::move(s));
        simulator.RunAll();
        (void)executions;
        return simulator.now() - start;
      };
      const auto cold = measure();
      const auto warm = measure();
      table.AddRow({std::to_string(hops), FormatNanos(cold),
                    FormatNanos(warm),
                    cold > 0 && warm > 0
                        ? FormatDouble(static_cast<double>(cold) /
                                           static_cast<double>(warm),
                                       1) + "x"
                        : "inf (warm is local)"});
    }
    std::printf("(a) execution latency: first use (cold, fetches code from"
                " origin) vs second use (warm, cache hit)\n");
    table.Print(std::cout);
  }

  // (b) Cache hit ratio vs cache size under Zipf-popular programs.
  {
    TablePrinter table({"cache size", "programs cached", "hit ratio",
                        "code-fetch shuttles"});
    // Build a population of 40 distinct programs of ~identical size.
    std::vector<vm::Program> population;
    for (int i = 0; i < 40; ++i) {
      auto program = vm::Assemble(
          "p" + std::to_string(i),
          "push " + std::to_string(i) + "\nsys emit\nhalt\n");
      population.push_back(*program);
    }
    const std::size_t each = population[0].WireSize() + 16;
    for (std::size_t capacity_programs : {4u, 8u, 16u, 40u}) {
      sim::Simulator simulator;
      net::Topology topology = net::MakeLine(3);
      wli::WnConfig config;
      config.quota.code_cache_bytes = capacity_programs * each;
      wli::WanderingNetwork wn(simulator, topology, config, 11);
      wn.PopulateAllNodes();
      for (const auto& program : population) {
        (void)wn.PublishProgram(program, 0);
      }
      Rng rng(capacity_programs);
      constexpr int kShuttles = 500;
      for (int i = 0; i < kShuttles; ++i) {
        const auto& program = population[rng.Zipf(population.size(), 1.0)];
        wli::Shuttle s = wli::Shuttle::Data(1, 2, {i}, i);
        s.code_digest = program.digest();
        (void)wn.Inject(std::move(s));
        simulator.RunAll();
      }
      auto& cache = wn.ship(2)->os().code_cache();
      const double hit_ratio =
          static_cast<double>(cache.hits()) /
          static_cast<double>(cache.hits() + cache.misses());
      table.AddRow({std::to_string(capacity_programs) + " programs",
                    std::to_string(cache.entry_count()),
                    FormatDouble(hit_ratio * 100, 1) + "%",
                    std::to_string(wn.ship(2)->code_misses())});
      report.Set("hit_ratio_cap" + std::to_string(capacity_programs),
                 hit_ratio);
    }
    std::printf("\n(b) per-ship code cache under 500 Zipf(1.0) shuttles"
                " over 40 programs\n");
    table.Print(std::cout);
  }

  std::printf("\nexpected shape: cold/warm gap grows with origin distance"
              " (one request-reply RTT); hit ratio climbs with cache size"
              " and saturates at 100%% when every program fits.\n");
  (void)report.Write();
  return 0;
}
