// bench_memory — the Memory Observatory gate (docs/MEMORY.md).
//
// Four phases:
//
//  1. ReplayNeutrality: the seeded sharded workload (the observatory bench's
//     4 row bands with a hot band 2) run counters-off, counters-on and
//     counters-on-4-threads must produce bit-identical decisions — same
//     per-window journal hash timeline, same rolling digest, same final
//     state hash, same event/handoff counts. Byte accounting observes; it
//     must never steer.
//  2. Attribution at the 10k-ship dispatch tier (bench_micro_substrate's
//     104x104 column-flow world, single-threaded so summed peaks are exact):
//     counters are enabled before the world is built, and the per-domain
//     byte counts are deterministic functions of the workload and the
//     libstdc++ growth schedule, so they are pinned exactly in
//     bench/baselines/BENCH_memory.json. The dispatch-phase coverage —
//     attributed live-byte growth over the phase's maxrss growth — must
//     reach 80% when VIATOR_REQUIRE_OVERHEAD is set (CI Release); maxrss
//     itself is host-varying and rides along under a gate-exempt name.
//  3. Overhead: enabled probes must cost under 3% CPU on the sharded
//     workload, measured as the minimum of adjacent off/on pair ratios
//     (preemption cannot inflate CPU time; drift cancels in each pair) —
//     enforced when VIATOR_REQUIRE_OVERHEAD is set, recorded always. The
//     compiled-out cost is exactly zero by construction
//     (tests/test_mem_compiled_out.cpp).
//  4. Growth anomalies: the health plane's MemGrowthDetector must flag a
//     synthetic monotone leak series exactly once and raise zero episodes
//     on the real workload's deterministic per-window pool-byte series.
//
// Exit nonzero on any contract violation; host-varying metrics carry
// "wall" / "seconds" / "pct" substrings the bench gate ignores by name.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/wandering_network.h"
#include "health/mem_growth.h"
#include "net/topology.h"
#include "shard/plan.h"
#include "shard/sharded_network.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "telemetry/mem_stats.h"
#include "telemetry/shard_metrics.h"

namespace {

using namespace viator;

using MemAggregate =
    std::array<telemetry::mem::Counter, telemetry::mem::kDomainCount>;

std::size_t EnvOr(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

/// "memory.shuttle_pool" from Domain::kShuttlePool (DomainName minus its
/// "mem." prefix, under the bench report's "memory." namespace).
std::string MetricBase(std::size_t domain) {
  return std::string("memory.") +
         (telemetry::mem::DomainName(
              static_cast<telemetry::mem::Domain>(domain)) +
          4);
}

// ---- Sharded workload (neutrality, overhead, growth series) ----------------

struct Workload {
  std::size_t side = 32;
  std::size_t rounds = 16;
  std::size_t per_round = 192;
  std::size_t windows_per_round = 4;
  std::uint64_t seed = 0xB5EED;
};

struct RunOutcome {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t state_hash = 0;
  std::uint64_t rolling_digest = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> window_hashes;
  MemAggregate mem{};
  /// Per-window pool bytes summed over shards (deterministic), the growth
  /// detector's input series.
  std::vector<std::uint64_t> pool_series;
};

/// One full sharded run, structurally identical for every counter setting
/// and thread count; hash_every = 1 so the journal timeline is the
/// neutrality witness. Counters (when on) are enabled before the world is
/// built and the aggregate is read before teardown returns the pools.
RunOutcome RunSharded(const Workload& w, bool counters_on,
                      std::size_t threads) {
  telemetry::mem::ResetAll();
  telemetry::mem::SetEnabled(counters_on);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = threads;
  config.seed = w.seed;
  config.hash_every = 1;
  config.assignment = shard::GridRowBands(w.side, w.side, 4);
  net::Topology grid = net::MakeGrid(w.side, w.side);
  shard::ShardedNetwork world(grid, config);

  const std::uint64_t nodes = w.side * w.side;
  const std::uint64_t band_rows = w.side / 4;
  const std::uint64_t hot_lo = 2 * band_rows * w.side;
  const std::uint64_t hot_hi = 3 * band_rows * w.side - 1;
  Rng traffic(w.seed ^ 0x0B5E70A1ULL);

  const std::clock_t cpu_start = std::clock();
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t flow = 1;
  for (std::size_t round = 0; round < w.rounds; ++round) {
    for (std::size_t i = 0; i < w.per_round; ++i) {
      const bool hot = (i % 4) != 0;
      const std::uint64_t lo = hot ? hot_lo : 0;
      const std::uint64_t hi = hot ? hot_hi : nodes - 1;
      const auto src = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      auto dst = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      if (dst == src) dst = static_cast<net::NodeId>(lo + (dst - lo + 1) %
                                                              (hi - lo + 1));
      (void)world.Inject(src, dst,
                         {static_cast<std::int64_t>(round),
                          static_cast<std::int64_t>(i)},
                         flow++);
    }
    world.RunWindows(w.windows_per_round);
  }
  world.RunUntilQuiescent();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::clock_t cpu_end = std::clock();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(elapsed).count();
  out.cpu_seconds =
      static_cast<double>(cpu_end - cpu_start) / CLOCKS_PER_SEC;
  out.events = world.total_dispatched();
  out.handoffs = world.stats().CounterValue("shard.handoffs");
  out.state_hash = world.StateHash();
  out.rolling_digest = world.journal().rolling_digest();
  out.window_hashes = world.journal().window_hashes();
  out.mem = telemetry::mem::Aggregate();
  for (const telemetry::ShardWindowRecord& record :
       world.observatory().windows()) {
    std::uint64_t pool = 0;
    for (const telemetry::ShardWindowSample& s : record.shards) {
      pool += s.pool_bytes;
    }
    out.pool_series.push_back(pool);
  }
  telemetry::mem::SetEnabled(false);
  return out;
}

bool SameDecisions(const RunOutcome& a, const RunOutcome& b,
                   const char* label) {
  bool ok = true;
  if (a.events != b.events || a.handoffs != b.handoffs) {
    std::fprintf(stderr,
                 "neutrality[%s]: counters changed workload totals "
                 "(events %llu vs %llu, handoffs %llu vs %llu)\n",
                 label, static_cast<unsigned long long>(a.events),
                 static_cast<unsigned long long>(b.events),
                 static_cast<unsigned long long>(a.handoffs),
                 static_cast<unsigned long long>(b.handoffs));
    ok = false;
  }
  if (a.state_hash != b.state_hash) {
    std::fprintf(stderr, "neutrality[%s]: final state hash diverged\n", label);
    ok = false;
  }
  if (a.rolling_digest != b.rolling_digest) {
    std::fprintf(stderr, "neutrality[%s]: journal digest diverged\n", label);
    ok = false;
  }
  if (a.window_hashes != b.window_hashes) {
    std::fprintf(stderr,
                 "neutrality[%s]: per-window hash timeline diverged "
                 "(%zu vs %zu windows)\n",
                 label, a.window_hashes.size(), b.window_hashes.size());
    ok = false;
  }
  if (a.pool_series != b.pool_series) {
    std::fprintf(stderr,
                 "neutrality[%s]: per-window pool-byte series diverged\n",
                 label);
    ok = false;
  }
  return ok;
}

// ---- Dispatch-tier attribution ----------------------------------------------

struct AttributionRun {
  std::uint64_t events = 0;
  MemAggregate built{};  // after world build, before any traffic
  MemAggregate end{};    // at quiescence, world still alive
  std::uint64_t maxrss_built = 0;
  std::uint64_t maxrss_end = 0;
};

/// bench_micro_substrate's 10k-ship dispatch tier with the memory plane on
/// from before the first allocation: a populated side x side
/// WanderingNetwork, `flows` column flows injected `rounds` times, drained
/// to quiescence. Single-threaded, so the summed per-thread peaks are the
/// exact high-water marks.
AttributionRun RunDispatchTier(std::size_t side, std::uint64_t flows,
                               std::uint64_t rounds) {
  telemetry::mem::ResetAll();
  telemetry::mem::SetEnabled(true);
  AttributionRun run;

  sim::Simulator simulator;
  net::Topology grid = net::MakeGrid(side, side);
  grid.SetRouteCacheEnabled(true);
  grid.SetRouteCacheCapacity(flows * side + 1);
  wli::WnConfig config;
  wli::WanderingNetwork network(simulator, grid, config, /*seed=*/42);
  network.PopulateAllNodes();
  run.built = telemetry::mem::Aggregate();
  run.maxrss_built = telemetry::ReadMaxRssBytes();

  const std::uint64_t spacing = side / flows;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t f = 0; f < flows; ++f) {
      const auto col = static_cast<net::NodeId>(f * spacing + spacing / 2);
      wli::Shuttle shuttle =
          wli::Shuttle::Data(col, static_cast<net::NodeId>(
                                      (side - 1) * side + col),
                             {static_cast<std::int64_t>(r)}, /*flow=*/f);
      shuttle.header.ttl = 255;  // column routes are side-1 hops; outlive 64
      (void)network.Inject(std::move(shuttle));
    }
  }
  run.events = simulator.RunAll();

  run.end = telemetry::mem::Aggregate();
  run.maxrss_end = telemetry::ReadMaxRssBytes();
  telemetry::mem::SetEnabled(false);
  return run;
}

}  // namespace

int main() {
  Workload w;
  w.side = EnvOr("VIATOR_MEM_SIDE", w.side);
  w.rounds = EnvOr("VIATOR_MEM_ROUNDS", w.rounds);
  w.per_round = EnvOr("VIATOR_MEM_LOAD", w.per_round);
  const std::size_t dispatch_side = EnvOr("VIATOR_DISPATCH_SIDE", 104);
  const std::uint64_t dispatch_flows = EnvOr("VIATOR_DISPATCH_FLOWS", 8);
  const std::uint64_t dispatch_rounds = EnvOr("VIATOR_DISPATCH_ROUNDS", 32);
  const bool require_gates = std::getenv("VIATOR_REQUIRE_OVERHEAD") != nullptr;
  const std::size_t reps = EnvOr("VIATOR_MEM_REPS", require_gates ? 5 : 3);

  telemetry::BenchReport report("memory");
  report.Set("memory.grid_side", static_cast<double>(w.side));
  report.Set("memory.rounds", static_cast<double>(w.rounds));
  report.Set("memory.load", static_cast<double>(w.per_round));
  report.Set("memory.dispatch_ships",
             static_cast<double>(dispatch_side * dispatch_side));
  bool ok = true;

  // ---- Phase 1: ReplayNeutrality --------------------------------------
  (void)RunSharded(w, false, 1);  // warmup: page-in, branch training
  const RunOutcome off = RunSharded(w, /*counters_on=*/false, /*threads=*/1);
  const RunOutcome on = RunSharded(w, /*counters_on=*/true, /*threads=*/1);
  const RunOutcome on4 = RunSharded(w, /*counters_on=*/true, /*threads=*/4);
  ok &= SameDecisions(off, on, "on-vs-off");
  ok &= SameDecisions(off, on4, "t4-vs-t1");
  std::printf("neutrality: %llu events, %llu handoffs, %zu hashed windows — "
              "%s\n",
              static_cast<unsigned long long>(off.events),
              static_cast<unsigned long long>(off.handoffs),
              off.window_hashes.size(), ok ? "bit-identical" : "DIVERGED");
  report.Set("memory.events", static_cast<double>(off.events));
  report.Set("memory.handoffs", static_cast<double>(off.handoffs));
  report.Set("memory.hashed_windows",
             static_cast<double>(off.window_hashes.size()));
  // Cross-thread aggregation exactness: live/alloc/free byte sums of the
  // 4-thread run must equal the single-threaded run's, domain by domain.
  for (std::size_t d = 0; d < telemetry::mem::kDomainCount; ++d) {
    if (on.mem[d].live_bytes != on4.mem[d].live_bytes ||
        on.mem[d].alloc_bytes != on4.mem[d].alloc_bytes ||
        on.mem[d].free_bytes != on4.mem[d].free_bytes) {
      std::fprintf(stderr,
                   "aggregation[%s]: t4 byte sums diverged from t1\n",
                   telemetry::mem::DomainName(
                       static_cast<telemetry::mem::Domain>(d)));
      ok = false;
    }
  }

  // ---- Phase 2: dispatch-tier attribution -----------------------------
  const AttributionRun attr =
      RunDispatchTier(dispatch_side, dispatch_flows, dispatch_rounds);
  std::printf("%s", telemetry::FormatMemReport(attr.end,
                                               attr.maxrss_end).c_str());
  std::int64_t attributed_growth = 0;
  std::int64_t total_live = 0;
  std::int64_t total_peak = 0;
  for (std::size_t d = 0; d < telemetry::mem::kDomainCount; ++d) {
    const telemetry::mem::Counter& c = attr.end[d];
    total_live += c.live_bytes;
    total_peak += c.peak_bytes;
    const std::int64_t growth = c.live_bytes - attr.built[d].live_bytes;
    if (growth > 0) attributed_growth += growth;
    // The per-domain counts are exact functions of the workload and the
    // container growth schedule: pinned in the committed baseline.
    const std::string base = MetricBase(d);
    report.Set(base + ".live_bytes", static_cast<double>(c.live_bytes));
    report.Set(base + ".peak_bytes", static_cast<double>(c.peak_bytes));
    report.Set(base + ".alloc_bytes", static_cast<double>(c.alloc_bytes));
    report.Set(base + ".allocs", static_cast<double>(c.allocs));
  }
  report.Set("memory.dispatch_events", static_cast<double>(attr.events));
  report.Set("memory.total_live_bytes", static_cast<double>(total_live));
  report.Set("memory.total_peak_bytes", static_cast<double>(total_peak));

  // Coverage of the dispatch phase: bytes the observatory attributes out of
  // the bytes the process actually grew by while dispatching. maxrss is
  // host-varying (page rounding, allocator slop), so the published numbers
  // carry gate-exempt names and the 80% floor is enforced in-binary.
  const std::uint64_t rss_growth = attr.maxrss_end - attr.maxrss_built;
  const double coverage =
      rss_growth > 0
          ? static_cast<double>(attributed_growth) /
                static_cast<double>(rss_growth)
          : 1.0;
  std::printf("dispatch coverage: %lld of %llu rss-growth bytes attributed "
              "(%.1f%%)\n",
              static_cast<long long>(attributed_growth),
              static_cast<unsigned long long>(rss_growth), coverage * 100.0);
  report.Set("memory.maxrss_wall_bytes",
             static_cast<double>(attr.maxrss_end));
  report.Set("memory.coverage_wall_pct", coverage * 100.0);
  if (require_gates && coverage < 0.80) {
    std::fprintf(stderr,
                 "dispatch coverage %.1f%% below the 80%% attribution gate\n",
                 coverage * 100.0);
    ok = false;
  }

  // ---- Phase 3: enabled overhead --------------------------------------
  // Same statistic as the perf-plane gate: CPU time of adjacent off/on
  // pairs, gate on the minimum pair ratio (noise can swing single pairs
  // both ways but cannot lift the minimum), median as the point estimate.
  double best_off = off.seconds;
  double best_on = on.seconds;
  std::vector<double> cpu_ratios;
  if (off.cpu_seconds > 0.0) {
    cpu_ratios.push_back(on.cpu_seconds / off.cpu_seconds);
  }
  for (std::size_t rep = 1; rep < reps; ++rep) {
    const RunOutcome rep_off = RunSharded(w, false, 1);
    const RunOutcome rep_on = RunSharded(w, true, 1);
    best_off = std::min(best_off, rep_off.seconds);
    best_on = std::min(best_on, rep_on.seconds);
    if (rep_off.cpu_seconds > 0.0) {
      cpu_ratios.push_back(rep_on.cpu_seconds / rep_off.cpu_seconds);
    }
  }
  std::sort(cpu_ratios.begin(), cpu_ratios.end());
  const double median_ratio =
      cpu_ratios.empty() ? 1.0 : cpu_ratios[cpu_ratios.size() / 2];
  const double min_ratio = cpu_ratios.empty() ? 1.0 : cpu_ratios.front();
  const double overhead_pct = (min_ratio - 1.0) * 100.0;
  const double median_pct = (median_ratio - 1.0) * 100.0;
  const double wall_pct =
      best_off > 0.0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  std::printf("overhead: cpu %+.2f%% min / %+.2f%% median of %zu pairs, "
              "wall best-of-%zu %+.2f%% (compiled-out is 0 by construction)\n",
              overhead_pct, median_pct, cpu_ratios.size(), reps, wall_pct);
  report.Set("memory.overhead_wall_off_seconds", best_off);
  report.Set("memory.overhead_wall_on_seconds", best_on);
  report.Set("memory.overhead_wall_pct", wall_pct);
  report.Set("memory.overhead_cpu_min_pct_seconds", overhead_pct);
  report.Set("memory.overhead_cpu_median_pct_seconds", median_pct);
  if (require_gates && overhead_pct >= 3.0) {
    std::fprintf(stderr, "memory plane overhead %.2f%% breaches the 3%% "
                 "gate\n", overhead_pct);
    ok = false;
  }

  // ---- Phase 4: growth anomalies --------------------------------------
  // Slack is the provisioned budget: this tier's warm-up (route caches and
  // queues filling) grows the pools by a deterministic ~2.4 MiB before
  // steady state, so a 4 MiB slack absorbs it while a genuine leak — which
  // keeps compounding — sails past.
  health::MemGrowthConfig growth_config;
  growth_config.consecutive_windows = 8;
  growth_config.slack_bytes = 4 << 20;

  // A synthetic leak — +512 KiB every window, 16 windows — compounds past
  // the slack and must be flagged exactly once.
  health::MemGrowthDetector synthetic(growth_config);
  for (sim::TimePoint window = 0; window < 16; ++window) {
    (void)synthetic.Observe(telemetry::mem::Domain::kShuttlePool,
                            (window + 1) * (512u << 10), window);
  }
  if (synthetic.events().size() != 1) {
    std::fprintf(stderr,
                 "growth detector flagged a monotone leak %zu times "
                 "(expected exactly 1)\n",
                 synthetic.events().size());
    ok = false;
  }

  // The real workload's deterministic pool-byte series (summed per window
  // over shards) must raise zero episodes: pools reach steady state.
  health::MemGrowthDetector workload(growth_config);
  for (std::size_t window = 0; window < on.pool_series.size(); ++window) {
    (void)workload.Observe(telemetry::mem::Domain::kCalendarQueue,
                           on.pool_series[window],
                           static_cast<sim::TimePoint>(window + 1));
  }
  std::printf("growth: synthetic leak flagged %zu time(s), workload raised "
              "%zu episode(s) over %zu windows\n",
              synthetic.events().size(), workload.events().size(),
              on.pool_series.size());
  if (!workload.events().empty()) {
    std::fprintf(stderr,
                 "growth detector raised %zu episodes on the steady-state "
                 "workload\n",
                 workload.events().size());
    ok = false;
  }
  report.Set("memory.growth_synthetic_events",
             static_cast<double>(synthetic.events().size()));
  report.Set("memory.growth_workload_events",
             static_cast<double>(workload.events().size()));

  telemetry::mem::ResetAll();
  (void)report.Write();
  return ok ? 0 : 1;
}
