// Self-Referential Health Plane — probe overhead and coverage.
//
// For growing grid sizes, drive the same seeded shuttle workload twice —
// probes off, then probes on (one round per workload step) — and measure
// the wall-clock overhead the health plane adds plus what it buys: probes
// emitted/absorbed, per-hop samples collected and ships scored. The two
// runs must make identical simulation decisions (the determinism-neutrality
// property); the bench verifies that by comparing delivered-shuttle
// counters and aborts if they diverge — an overhead number measured against
// a different workload means nothing.
//
// BENCH_health.json keeps the deterministic coverage counters (gated in CI
// against bench/baselines/BENCH_health.json by `wnhealth bench`) alongside
// wall-clock metrics whose names carry "wall" so the gate ignores them.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "health/probe.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct Harness {
  sim::Simulator simulator;
  net::Topology topology;
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> network;
  std::unique_ptr<health::ProbePlane> plane;

  Harness(int side, std::uint64_t seed, bool probes) {
    topology = net::MakeGrid(side, side);
    network = std::make_unique<wli::WanderingNetwork>(simulator, topology,
                                                      config, seed);
    network->PopulateAllNodes();
    health::HealthConfig hconfig;
    hconfig.enable_probes = probes;
    hconfig.collector = 0;
    plane = std::make_unique<health::ProbePlane>(*network, hconfig, seed);
  }

  void Drive(int steps) {
    const std::size_t n = topology.node_count();
    for (int i = 0; i < steps; ++i) {
      const auto src =
          static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      auto dst = static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % n);
      (void)network->Inject(wli::Shuttle::Data(
          src, dst, {static_cast<std::int64_t>(i), 3, 5}, i + 1));
      simulator.RunAll();
      plane->RunRound();  // no-op when probes are off
      simulator.RunAll();
      if (i % 8 == 7) {
        network->Pulse();
        simulator.RunAll();
      }
    }
    plane->Evaluate();
  }

  std::uint64_t Delivered() const {
    std::uint64_t total = 0;
    const_cast<wli::WanderingNetwork&>(*network).ForEachShip(
        [&total](wli::Ship& ship) { total += ship.shuttles_consumed(); });
    return total;
  }
};

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  constexpr int kReps = 3;
  constexpr int kSteps = 256;

  std::printf("Self-Referential Health Plane — probe overhead (seeded grid"
              " workload, %d steps, %d reps per row)\n\n", kSteps, kReps);

  TablePrinter table({"grid", "ships", "off ms", "on ms", "overhead",
                      "probes", "hops", "absorbed%"});
  telemetry::BenchReport report("health");

  for (const int side : {3, 4, 6}) {
    double off_ms = 0, on_ms = 0;
    std::uint64_t emitted = 0, absorbed = 0, hops = 0;

    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 0x4ea17 + 1000 * side + rep;

      Harness off(side, seed, false);
      auto t0 = std::chrono::steady_clock::now();
      off.Drive(kSteps);
      off_ms += MillisSince(t0);

      Harness on(side, seed, true);
      t0 = std::chrono::steady_clock::now();
      on.Drive(kSteps);
      on_ms += MillisSince(t0);

      // Determinism-neutrality check: the probe-on run must have made the
      // exact same workload decisions, or the overhead numbers are noise.
      if (on.Delivered() != off.Delivered()) {
        std::fprintf(stderr,
                     "neutrality violated for %dx%d rep %d: %llu vs %llu"
                     " shuttles delivered\n",
                     side, side, rep,
                     static_cast<unsigned long long>(on.Delivered()),
                     static_cast<unsigned long long>(off.Delivered()));
        return 1;
      }
      emitted = on.plane->probes_emitted();
      absorbed = on.plane->probes_absorbed();
      hops = on.plane->BuildReport().summary.hops_observed;
    }

    const double overhead =
        off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
    table.AddRow(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(side * side),
         FormatDouble(off_ms / kReps, 2), FormatDouble(on_ms / kReps, 2),
         FormatDouble(overhead, 1) + "%", std::to_string(emitted),
         std::to_string(hops),
         FormatDouble(emitted > 0 ? 100.0 * static_cast<double>(absorbed) /
                                        static_cast<double>(emitted)
                                  : 0.0,
                      1)});

    const std::string suffix =
        "_" + std::to_string(side) + "x" + std::to_string(side);
    // Deterministic coverage counters — these gate in CI.
    report.Set("probes_emitted" + suffix, static_cast<double>(emitted));
    report.Set("probes_absorbed" + suffix, static_cast<double>(absorbed));
    report.Set("hops_observed" + suffix, static_cast<double>(hops));
    // Wall-clock metrics — "wall" in the name keeps the gate away.
    report.Set("off_wall_ms" + suffix, off_ms / kReps);
    report.Set("on_wall_ms" + suffix, on_ms / kReps);
    report.Set("overhead_wall_pct" + suffix, overhead);
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: probe rounds add a small constant cost per"
              " step (a handful of zero-byte frames wandering the grid);"
              " delivered-shuttle counts are bit-identical between the two"
              " runs because probes skip the loss draw, the router and every"
              " ship counter. coverage counters are deterministic and gate"
              " against bench/baselines/BENCH_health.json.\n");
  return 0;
}
