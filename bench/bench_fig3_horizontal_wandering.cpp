// E4 — Figure 3: horizontal (inter-node) network wandering — functional
// specialization follows demand across the physical network over time,
// creating "virtual outstanding networks".
//
// Reproduction: an 8-node line hosts one fusion function. The demand
// hotspot moves from node 1 to node 6 over 6 epochs. With wandering on
// (4G), the function migrates after the hotspot; with wandering off, it
// stays put. We report, per epoch, the function's host and the mean service
// round-trip time from the hotspot — the quantitative content of Figure 3.
#include <cstdio>
#include <iostream>
#include <vector>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

constexpr std::int64_t kEchoRequest = 1;
constexpr std::int64_t kEchoReply = 2;

struct EpochSample {
  net::NodeId hotspot;
  net::NodeId host;
  double rtt_ms;
};

std::vector<EpochSample> Run(bool wandering) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = 5 * sim::kMillisecond;
  net::Topology topology = net::MakeLine(8, link);
  wli::WnConfig config;
  config.generation = 4;
  config.enable_horizontal = wandering;
  config.pulse_interval = 100 * sim::kMillisecond;
  config.horizontal.hysteresis = 1.2;
  wli::WanderingNetwork wn(simulator, topology, config, 7);
  wn.PopulateAllNodes();

  // Echo service: whichever ship holds the fusion role answers requests.
  wn.ForEachShip([](wli::Ship& ship) {
    ship.SetRoleHandler(
        node::FirstLevelRole::kFusion,
        [](wli::Ship& host, const wli::Shuttle& shuttle) {
          if (shuttle.payload.size() < 2 ||
              shuttle.payload[0] != kEchoRequest) {
            return;
          }
          (void)host.SendShuttle(wli::Shuttle::Data(
              host.id(), shuttle.header.source,
              {kEchoReply, shuttle.payload[1]}, shuttle.header.flow_id));
        });
  });

  wli::NetFunction fn;
  fn.name = "fusion-service";
  fn.role = node::FirstLevelRole::kFusion;
  const auto fn_id = wn.DeployFunction(1, fn);

  sim::TimePoint reply_at = 0;
  wn.ForEachShip([&](wli::Ship& ship) {
    ship.SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
      if (!s.payload.empty() && s.payload[0] == kEchoReply) {
        reply_at = simulator.now();
      }
    });
  });

  wn.StartPulse(100 * sim::kSecond);
  std::vector<EpochSample> samples;
  const net::NodeId hotspots[] = {1, 2, 3, 4, 5, 6};
  for (net::NodeId hotspot : hotspots) {
    // Demand at the hotspot across the epoch (several pulses see it).
    for (int burst = 0; burst < 4; ++burst) {
      simulator.ScheduleAfter(burst * 120 * sim::kMillisecond, [&wn, hotspot] {
        for (int i = 0; i < 25; ++i) {
          wn.demand().Record(hotspot, node::FirstLevelRole::kFusion, 1.0);
        }
      });
    }
    simulator.RunUntil(simulator.now() + 600 * sim::kMillisecond);

    // Measure service RTT from the hotspot to the current host.
    const net::NodeId host = wn.placements().at(fn_id);
    double rtt_ms = 0.0;
    if (host == hotspot) {
      rtt_ms = 0.0;
    } else {
      const sim::TimePoint sent = simulator.now();
      (void)wn.Inject(wli::Shuttle::Data(hotspot, host,
                                         {kEchoRequest, 1}, 99));
      simulator.RunAll();
      rtt_ms = sim::ToSeconds(reply_at - sent) * 1e3;
    }
    samples.push_back({hotspot, host, rtt_ms});
  }
  return samples;
}

}  // namespace

int main() {
  const auto wandering = Run(true);
  const auto pinned = Run(false);

  std::printf("E4 / Figure 3 — horizontal wandering: a fusion function"
              " follows a moving demand hotspot on an 8-node line\n\n");
  TablePrinter table({"epoch", "hotspot", "host(wander)", "rtt(wander)",
                      "host(static)", "rtt(static)"});
  for (std::size_t e = 0; e < wandering.size(); ++e) {
    table.AddRow({std::to_string(e),
                  "node " + std::to_string(wandering[e].hotspot),
                  "node " + std::to_string(wandering[e].host),
                  FormatDouble(wandering[e].rtt_ms, 1) + " ms",
                  "node " + std::to_string(pinned[e].host),
                  FormatDouble(pinned[e].rtt_ms, 1) + " ms"});
  }
  table.Print(std::cout);

  double wander_total = 0, pinned_total = 0;
  for (std::size_t e = 0; e < wandering.size(); ++e) {
    wander_total += wandering[e].rtt_ms;
    pinned_total += pinned[e].rtt_ms;
  }
  if (wander_total < 0.1) {
    std::printf("\ncumulative service RTT: wandering ~0 ms (host colocated"
                " with hotspot every epoch) vs static %.1f ms\n",
                pinned_total);
  } else {
    std::printf("\ncumulative service RTT: wandering %.1f ms vs static"
                " %.1f ms (%.1fx better)\n",
                wander_total, pinned_total, pinned_total / wander_total);
  }
  std::printf("expected shape: the wandering host tracks the hotspot, so"
              " its RTT stays near zero while the static host's RTT grows"
              " linearly with hotspot distance.\n");

  telemetry::BenchReport report("fig3_horizontal_wandering");
  report.Set("wandering_rtt_ms_total", wander_total);
  report.Set("static_rtt_ms_total", pinned_total);
  report.Set("epochs", static_cast<double>(wandering.size()));
  (void)report.Write();
  return 0;
}
