// Network Genesis — snapshot/restore throughput and delta sizing.
//
// For growing grid sizes, drive a seeded shuttle workload to quiescence,
// then measure: full capture wall time + snapshot size, restore wall time
// into a fresh network, and the incremental delta size after a short
// perturbation (a few more workload steps). Restores are verified by
// comparing the recaptured section digests against the original full
// snapshot — a benchmark that silently restores garbage reports nothing.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "genesis/manager.h"
#include "genesis/snapshot.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct Harness {
  sim::Simulator simulator;
  net::Topology topology;
  wli::WnConfig config;
  std::unique_ptr<wli::WanderingNetwork> network;

  Harness(int side, std::uint64_t seed, bool populate) {
    if (populate) topology = net::MakeGrid(side, side);
    network = std::make_unique<wli::WanderingNetwork>(simulator, topology,
                                                      config, seed);
    if (populate) network->PopulateAllNodes();
  }

  void Drive(int begin, int end) {
    const std::size_t n = topology.node_count();
    for (int i = begin; i < end; ++i) {
      const auto src =
          static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      auto dst = static_cast<net::NodeId>(network->rng().UniformInt(0, n - 1));
      if (dst == src) dst = static_cast<net::NodeId>((dst + 1) % n);
      (void)network->Inject(wli::Shuttle::Data(
          src, dst, {static_cast<std::int64_t>(i), 3, 5}, i + 1));
      simulator.RunAll();
      if (i % 8 == 7) {
        network->Pulse();
        simulator.RunAll();
      }
    }
  }
};

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool SameSections(const std::vector<std::byte>& a,
                  const std::vector<std::byte>& b) {
  auto pa = genesis::ParseSnapshot(a);
  auto pb = genesis::ParseSnapshot(b);
  if (!pa.ok() || !pb.ok()) return false;
  if (pa->sections.size() != pb->sections.size()) return false;
  for (std::size_t i = 0; i < pa->sections.size(); ++i) {
    if (pa->sections[i].id != pb->sections[i].id ||
        pa->sections[i].digest != pb->sections[i].digest) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("Network Genesis — snapshot/restore throughput (seeded grid"
              " workload, %d reps per row)\n\n", 5);

  constexpr int kReps = 5;
  constexpr int kWarmSteps = 96;   // workload before the full capture
  constexpr int kDeltaSteps = 16;  // perturbation before the delta capture

  TablePrinter table({"grid", "ships", "full KB", "capture ms", "restore ms",
                      "delta KB", "delta/full"});
  telemetry::BenchReport report("genesis");

  for (const int side : {4, 6, 8}) {
    double capture_ms = 0, restore_ms = 0;
    std::size_t full_bytes = 0, delta_bytes = 0;
    std::size_t ships = 0;
    bool verified = true;

    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t seed = 0x6e5 + 1000 * side + rep;
      Harness source(side, seed, true);
      source.Drive(0, kWarmSteps);
      ships = source.topology.node_count();

      genesis::GenesisManager manager(*source.network);
      auto t0 = std::chrono::steady_clock::now();
      auto full = manager.CaptureFull();
      capture_ms += MillisSince(t0);
      if (!full.ok()) {
        std::fprintf(stderr, "capture: %s\n", full.status().ToString().c_str());
        return 1;
      }
      full_bytes = full->size();

      Harness target(side, seed, false);
      genesis::GenesisManager restorer(*target.network);
      t0 = std::chrono::steady_clock::now();
      if (Status s = restorer.RestoreFull(*full); !s.ok()) {
        std::fprintf(stderr, "restore: %s\n", s.ToString().c_str());
        return 1;
      }
      restore_ms += MillisSince(t0);

      auto recaptured = restorer.CaptureFull();
      verified = verified && recaptured.ok() &&
                 SameSections(*full, *recaptured);

      source.Drive(kWarmSteps, kWarmSteps + kDeltaSteps);
      auto delta = manager.CaptureDelta();
      if (!delta.ok()) {
        std::fprintf(stderr, "delta: %s\n", delta.status().ToString().c_str());
        return 1;
      }
      delta_bytes = delta->size();
    }

    if (!verified) {
      std::fprintf(stderr, "restore verification failed for %dx%d\n", side,
                   side);
      return 1;
    }
    table.AddRow(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(ships),
         FormatDouble(static_cast<double>(full_bytes) / 1024.0, 1),
         FormatDouble(capture_ms / kReps, 2),
         FormatDouble(restore_ms / kReps, 2),
         FormatDouble(static_cast<double>(delta_bytes) / 1024.0, 1),
         FormatDouble(static_cast<double>(delta_bytes) /
                          static_cast<double>(full_bytes),
                      2)});
    const std::string suffix =
        "_" + std::to_string(side) + "x" + std::to_string(side);
    report.Set("full_kib" + suffix,
               static_cast<double>(full_bytes) / 1024.0);
    report.Set("capture_ms" + suffix, capture_ms / kReps);
    report.Set("restore_ms" + suffix, restore_ms / kReps);
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: capture and restore scale roughly linearly"
              " with ship count; deltas after a short perturbation stay well"
              " under the full snapshot because unchanged sections (topology,"
              " repository, placements) are elided. every restore is verified"
              " against the source snapshot's section digests.\n");
  return 0;
}
