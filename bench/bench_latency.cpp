// bench_latency — the Latency Observatory gate (docs/LATENCY.md).
//
// Four phases:
//
//  1. ReplayNeutrality: the seeded sharded workload (same 4-band grid as the
//     memory gate) run plane-off, plane-on and plane-on-4-threads must make
//     bit-identical decisions — same per-window journal hash timeline, same
//     rolling digest, same final state hash, same event/handoff counts.
//     Latency observes; it must never steer. On top of decision neutrality,
//     the plane itself must be thread-count-exact: the per-(stage, class)
//     sketches merged across shards after the 4-thread run must equal the
//     single-threaded run's bucket for bucket, and the per-window delivery
//     quantile series must match window for window.
//  2. Quantile pinning: per-class end-to-end delivery quantiles and stage
//     counts of the single-threaded run are pure integer functions of the
//     workload, pinned exactly in bench/baselines/BENCH_latency.json.
//  3. Overhead: the enabled plane must cost under 3% CPU on the sharded
//     workload, measured as the minimum of adjacent off/on pair ratios —
//     enforced when VIATOR_REQUIRE_OVERHEAD is set, recorded always. The
//     compiled-out cost is exactly zero by construction
//     (tests/test_lat_compiled_out.cpp).
//  4. SLO burn: the health plane's SloBurnDetector must flag a synthetic
//     breach series exactly once, stay quiet on the healthy workload's
//     per-window p99 series, and — on a deliberately congested rerun (the
//     whole load aimed at one sink) — raise exactly one slo_burn episode
//     whose exemplar trace id is live in the owning shard's span collector
//     (the wnreplay/wnscope drill-down coordinate).
//
// Exit nonzero on any contract violation; host-varying metrics carry
// "wall" / "seconds" substrings the bench gate ignores by name.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/wandering_network.h"
#include "health/slo_burn.h"
#include "net/topology.h"
#include "shard/plan.h"
#include "shard/sharded_network.h"
#include "telemetry/bench_report.h"
#include "telemetry/latency_plane.h"
#include "telemetry/shard_metrics.h"
#include "telemetry/span.h"

namespace {

using namespace viator;
namespace lat = telemetry::lat;

std::size_t EnvOr(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

// ---- Sharded workload (neutrality, pinning, overhead, SLO series) ----------

struct Workload {
  std::size_t side = 32;
  std::size_t rounds = 16;
  std::size_t per_round = 192;
  std::size_t windows_per_round = 4;
  std::uint64_t seed = 0xB5EED;
};

struct RunOutcome {
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t state_hash = 0;
  std::uint64_t rolling_digest = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> window_hashes;
  /// Cumulative sketches merged across every shard's lane (empty when the
  /// plane ran off).
  lat::Lane merged;
  /// Per-window delivery fold (p99 maxed, deliveries summed over shards)
  /// from the shard observatory's samples: deterministic, the SLO
  /// detector's input series.
  std::vector<std::uint64_t> p99_series;
  std::vector<std::uint64_t> delivered_series;
};

/// One full sharded run, structurally identical for every plane setting and
/// thread count; hash_every = 1 so the journal timeline is the neutrality
/// witness. The plane (when on) is enabled before the world is built and the
/// lanes are merged before teardown.
RunOutcome RunSharded(const Workload& w, bool plane_on, std::size_t threads) {
  lat::SetEnabled(plane_on);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = threads;
  config.seed = w.seed;
  config.hash_every = 1;
  config.assignment = shard::GridRowBands(w.side, w.side, 4);
  net::Topology grid = net::MakeGrid(w.side, w.side);
  shard::ShardedNetwork world(grid, config);

  const std::uint64_t nodes = w.side * w.side;
  const std::uint64_t band_rows = w.side / 4;
  const std::uint64_t hot_lo = 2 * band_rows * w.side;
  const std::uint64_t hot_hi = 3 * band_rows * w.side - 1;
  Rng traffic(w.seed ^ 0x0B5E70A1ULL);

  const std::clock_t cpu_start = std::clock();
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t flow = 1;
  for (std::size_t round = 0; round < w.rounds; ++round) {
    for (std::size_t i = 0; i < w.per_round; ++i) {
      const bool hot = (i % 4) != 0;
      const std::uint64_t lo = hot ? hot_lo : 0;
      const std::uint64_t hi = hot ? hot_hi : nodes - 1;
      const auto src = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      auto dst = static_cast<net::NodeId>(traffic.UniformInt(lo, hi));
      if (dst == src) dst = static_cast<net::NodeId>(lo + (dst - lo + 1) %
                                                              (hi - lo + 1));
      (void)world.Inject(src, dst,
                         {static_cast<std::int64_t>(round),
                          static_cast<std::int64_t>(i)},
                         flow++);
    }
    world.RunWindows(w.windows_per_round);
  }
  world.RunUntilQuiescent();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::clock_t cpu_end = std::clock();

  RunOutcome out;
  out.seconds = std::chrono::duration<double>(elapsed).count();
  out.cpu_seconds =
      static_cast<double>(cpu_end - cpu_start) / CLOCKS_PER_SEC;
  out.events = world.total_dispatched();
  out.handoffs = world.stats().CounterValue("shard.handoffs");
  out.state_hash = world.StateHash();
  out.rolling_digest = world.journal().rolling_digest();
  out.window_hashes = world.journal().window_hashes();
  for (std::uint32_t shard = 0; shard < world.shard_count(); ++shard) {
    world.shard_network(shard).lat_lane().MergeInto(out.merged);
  }
  for (const telemetry::ShardWindowRecord& record :
       world.observatory().windows()) {
    std::uint64_t p99 = 0;
    std::uint64_t delivered = 0;
    for (const telemetry::ShardWindowSample& s : record.shards) {
      p99 = std::max(p99, s.lat_p99_ns);
      delivered += s.lat_delivered;
    }
    out.p99_series.push_back(p99);
    out.delivered_series.push_back(delivered);
  }
  lat::SetEnabled(false);
  return out;
}

bool SameDecisions(const RunOutcome& a, const RunOutcome& b,
                   const char* label) {
  bool ok = true;
  if (a.events != b.events || a.handoffs != b.handoffs) {
    std::fprintf(stderr,
                 "neutrality[%s]: the plane changed workload totals "
                 "(events %llu vs %llu, handoffs %llu vs %llu)\n",
                 label, static_cast<unsigned long long>(a.events),
                 static_cast<unsigned long long>(b.events),
                 static_cast<unsigned long long>(a.handoffs),
                 static_cast<unsigned long long>(b.handoffs));
    ok = false;
  }
  if (a.state_hash != b.state_hash) {
    std::fprintf(stderr, "neutrality[%s]: final state hash diverged\n", label);
    ok = false;
  }
  if (a.rolling_digest != b.rolling_digest) {
    std::fprintf(stderr, "neutrality[%s]: journal digest diverged\n", label);
    ok = false;
  }
  if (a.window_hashes != b.window_hashes) {
    std::fprintf(stderr,
                 "neutrality[%s]: per-window hash timeline diverged "
                 "(%zu vs %zu windows)\n",
                 label, a.window_hashes.size(), b.window_hashes.size());
    ok = false;
  }
  return ok;
}

/// Bucket-exactness across thread counts: every cumulative sketch and the
/// per-window fold series must be identical between t1 and t4.
bool SameSketches(const RunOutcome& a, const RunOutcome& b) {
  bool ok = true;
  for (std::size_t s = 0; s < lat::kStageCount; ++s) {
    const auto stage = static_cast<lat::Stage>(s);
    for (std::size_t c = 0; c < lat::StageClassCount(stage); ++c) {
      if (!(a.merged.Sketch(stage, c) == b.merged.Sketch(stage, c))) {
        std::fprintf(stderr,
                     "exactness: sketch %s[%zu] diverged between thread "
                     "counts\n",
                     lat::StageName(stage), c);
        ok = false;
      }
    }
  }
  if (a.p99_series != b.p99_series ||
      a.delivered_series != b.delivered_series) {
    std::fprintf(stderr,
                 "exactness: per-window delivery fold series diverged "
                 "between thread counts (%zu vs %zu windows)\n",
                 a.p99_series.size(), b.p99_series.size());
    ok = false;
  }
  return ok;
}

// ---- Congestion scenario (SLO burn with a live exemplar) -------------------

struct CongestionOutcome {
  std::size_t slo_events = 0;
  std::uint64_t exemplar_trace = 0;
  bool exemplar_resolves = false;
  std::size_t windows = 0;
  std::uint64_t worst_p99_ns = 0;
};

/// Aims the whole load at one sink so its links saturate and the per-window
/// p99 climbs past `bound_ns` (a healthy run's p99) and stays there. Windows
/// are stepped one at a time so each barrier fold feeds the detector that
/// window's quantile and worst exemplar. Tracing is on, so the exemplar
/// carries a trace id resolvable in the sink shard's span collector — the
/// coordinate `wnscope latency` hands to `wnreplay seek`.
CongestionOutcome RunCongested(const Workload& w, std::uint64_t bound_ns,
                               std::uint32_t burn_windows) {
  lat::SetEnabled(true);
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = 1;
  config.seed = w.seed;
  config.hash_every = 0;  // raw-speed setting; no neutrality claim here
  config.assignment = shard::GridRowBands(w.side, w.side, 4);
  config.wn.telemetry.enable_tracing = true;
  // Keep every span of the overload alive: the exemplar's trace must still
  // resolve when the burn fires, long after the default ring would have
  // filled with per-hop routing spans.
  config.wn.telemetry.span_capacity = 1 << 20;
  net::Topology grid = net::MakeGrid(w.side, w.side);
  shard::ShardedNetwork world(grid, config);

  health::SloSpec spec;
  spec.quantile = 0.99;
  spec.bound_ns = bound_ns;
  spec.burn_windows = burn_windows;
  health::SloBurnDetector detector({spec});

  const std::uint64_t nodes = w.side * w.side;
  // Corner sink: the longest routes in the grid and only two ingress links,
  // so the focused load both travels far and queues hard.
  const auto sink = static_cast<net::NodeId>(nodes - 1);
  Rng traffic(w.seed ^ 0xC09657EDULL);

  CongestionOutcome out;
  // Delivery latency can never exceed the simulated horizon, so run enough
  // 1 ms windows to let the backlog age well past the bound: the sink's
  // queues stay saturated the whole time, and a delivered frame's latency
  // tracks the age of the backlog in front of it.
  const std::size_t windows =
      3 * (bound_ns / static_cast<std::size_t>(sim::kMillisecond)) +
      12 * static_cast<std::size_t>(burn_windows);
  std::uint64_t flow = 1;
  for (std::size_t window = 0; window < windows; ++window) {
    // Sustained overload: every window pours a double round at one sink, so
    // the backlog — and with it the end-to-end p99 — grows past any bound a
    // healthy run can justify.
    for (std::size_t i = 0; i < 2 * w.per_round; ++i) {
      auto src = static_cast<net::NodeId>(traffic.UniformInt(0, nodes - 1));
      if (src == sink) src = static_cast<net::NodeId>((sink + 1) % nodes);
      (void)world.Inject(src, sink, {static_cast<std::int64_t>(i)}, flow++);
    }
    world.RunWindows(1);
    ++out.windows;

    // The window's delivery fold, maxed over shards; the worst exemplar of
    // the worst shard is the drill-down coordinate the episode reports.
    std::uint64_t p99 = 0;
    std::uint64_t trace = 0;
    for (std::uint32_t shard = 0; shard < world.shard_count(); ++shard) {
      const lat::Lane::WindowStats& fold = world.LatencyWindow(shard);
      if (fold.p99_ns > p99) {
        p99 = fold.p99_ns;
        trace = fold.worst.empty() ? 0 : fold.worst.front().trace_id;
      }
    }
    out.worst_p99_ns = std::max(out.worst_p99_ns, p99);
    const auto event = detector.Observe(
        0, p99, static_cast<sim::TimePoint>(window + 1), trace);
    if (event.has_value()) {
      out.exemplar_trace = trace;
      // Resolve the exemplar: with tracing on, the worst delivery's trace
      // must be live in a shard's span collector (its inject span lives on
      // the source shard, its consume span on the sink's) — the coordinates
      // `wnscope latency` prints and `wnreplay seek` accepts.
      for (std::uint32_t shard = 0;
           shard < world.shard_count() && !out.exemplar_resolves; ++shard) {
        const auto& spans =
            world.shard_network(shard).telemetry().spans().spans();
        for (const telemetry::SpanRecord& s : spans) {
          if (s.trace_id == trace) {
            out.exemplar_resolves = true;
            break;
          }
        }
      }
      // The alert fired and resolved: the scenario's job is done (episode
      // dedup under a sustained breach is the synthetic phase's claim).
      break;
    }
  }
  out.slo_events = detector.events().size();
  lat::SetEnabled(false);
  return out;
}

}  // namespace

int main() {
  Workload w;
  w.side = EnvOr("VIATOR_LAT_SIDE", w.side);
  w.rounds = EnvOr("VIATOR_LAT_ROUNDS", w.rounds);
  w.per_round = EnvOr("VIATOR_LAT_LOAD", w.per_round);
  const bool require_gates = std::getenv("VIATOR_REQUIRE_OVERHEAD") != nullptr;
  const std::size_t reps = EnvOr("VIATOR_LAT_REPS", require_gates ? 5 : 3);

  telemetry::BenchReport report("latency");
  report.Set("latency.grid_side", static_cast<double>(w.side));
  report.Set("latency.rounds", static_cast<double>(w.rounds));
  report.Set("latency.load", static_cast<double>(w.per_round));
  bool ok = true;

  // ---- Phase 1: ReplayNeutrality + thread-count exactness --------------
  (void)RunSharded(w, false, 1);  // warmup: page-in, branch training
  const RunOutcome off = RunSharded(w, /*plane_on=*/false, /*threads=*/1);
  const RunOutcome on = RunSharded(w, /*plane_on=*/true, /*threads=*/1);
  const RunOutcome on4 = RunSharded(w, /*plane_on=*/true, /*threads=*/4);
  ok &= SameDecisions(off, on, "on-vs-off");
  ok &= SameDecisions(off, on4, "t4-vs-t1");
  ok &= SameSketches(on, on4);
  std::printf("neutrality: %llu events, %llu handoffs, %zu hashed windows, "
              "%llu deliveries sketched — %s\n",
              static_cast<unsigned long long>(off.events),
              static_cast<unsigned long long>(off.handoffs),
              off.window_hashes.size(),
              static_cast<unsigned long long>(on.merged.DeliveredCount()),
              ok ? "bit-identical" : "DIVERGED");
  report.Set("latency.events", static_cast<double>(off.events));
  report.Set("latency.handoffs", static_cast<double>(off.handoffs));
  report.Set("latency.hashed_windows",
             static_cast<double>(off.window_hashes.size()));

  // ---- Phase 2: quantile pinning ---------------------------------------
  // Integer functions of the workload: pinned exactly in the committed
  // baseline, for every class the workload exercises and for the stage
  // totals. The delivery count must cover every injected shuttle (the
  // workload has no losses), and drops must be zero.
  const lat::Stage kDelivery = lat::Stage::kDelivery;
  for (std::size_t c = 0; c < lat::kClassCount; ++c) {
    const lat::LatencySketch& sketch = on.merged.Sketch(kDelivery, c);
    const std::string base = std::string("latency.delivery.") +
                             lat::ClassName(c);
    report.Set(base + ".count", static_cast<double>(sketch.count()));
    report.Set(base + ".p50_ns",
               static_cast<double>(sketch.ValueAtQuantile(0.50)));
    report.Set(base + ".p95_ns",
               static_cast<double>(sketch.ValueAtQuantile(0.95)));
    report.Set(base + ".p99_ns",
               static_cast<double>(sketch.ValueAtQuantile(0.99)));
  }
  const lat::LatencySketch& data =
      on.merged.Sketch(kDelivery, 0 /* kData */);
  std::printf("pinning: data-class delivery p50/p95/p99 = %llu/%llu/%llu ns "
              "over %llu deliveries\n",
              static_cast<unsigned long long>(data.ValueAtQuantile(0.50)),
              static_cast<unsigned long long>(data.ValueAtQuantile(0.95)),
              static_cast<unsigned long long>(data.ValueAtQuantile(0.99)),
              static_cast<unsigned long long>(data.count()));
  report.Set("latency.hop_count",
             static_cast<double>(on.merged.Sketch(lat::Stage::kHop, 0)
                                     .count()));
  report.Set("latency.queue_count",
             static_cast<double>(on.merged.Sketch(lat::Stage::kQueue, 0)
                                     .count()));
  report.Set("latency.delivered", static_cast<double>(
                                      on.merged.DeliveredCount()));
  report.Set("latency.dropped", static_cast<double>(
                                    on.merged.DroppedCount()));
  if (on.merged.DeliveredCount() == 0) {
    std::fprintf(stderr, "pinning: the plane recorded zero deliveries\n");
    ok = false;
  }

  // ---- Phase 3: enabled overhead --------------------------------------
  // Same statistic as the perf/mem gates: CPU time of adjacent off/on
  // pairs, gated on the minimum pair ratio (noise can swing single pairs
  // both ways but cannot lift the minimum), median as the point estimate.
  double best_off = off.seconds;
  double best_on = on.seconds;
  std::vector<double> cpu_ratios;
  if (off.cpu_seconds > 0.0) {
    cpu_ratios.push_back(on.cpu_seconds / off.cpu_seconds);
  }
  for (std::size_t rep = 1; rep < reps; ++rep) {
    const RunOutcome rep_off = RunSharded(w, false, 1);
    const RunOutcome rep_on = RunSharded(w, true, 1);
    best_off = std::min(best_off, rep_off.seconds);
    best_on = std::min(best_on, rep_on.seconds);
    if (rep_off.cpu_seconds > 0.0) {
      cpu_ratios.push_back(rep_on.cpu_seconds / rep_off.cpu_seconds);
    }
  }
  std::sort(cpu_ratios.begin(), cpu_ratios.end());
  const double median_ratio =
      cpu_ratios.empty() ? 1.0 : cpu_ratios[cpu_ratios.size() / 2];
  const double min_ratio = cpu_ratios.empty() ? 1.0 : cpu_ratios.front();
  const double overhead_pct = (min_ratio - 1.0) * 100.0;
  const double median_pct = (median_ratio - 1.0) * 100.0;
  const double wall_pct =
      best_off > 0.0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  std::printf("overhead: cpu %+.2f%% min / %+.2f%% median of %zu pairs, "
              "wall best-of-%zu %+.2f%% (compiled-out is 0 by construction)\n",
              overhead_pct, median_pct, cpu_ratios.size(), reps, wall_pct);
  report.Set("latency.overhead_wall_off_seconds", best_off);
  report.Set("latency.overhead_wall_on_seconds", best_on);
  report.Set("latency.overhead_wall_pct", wall_pct);
  report.Set("latency.overhead_cpu_min_pct_seconds", overhead_pct);
  report.Set("latency.overhead_cpu_median_pct_seconds", median_pct);
  if (require_gates && overhead_pct >= 3.0) {
    std::fprintf(stderr,
                 "latency plane overhead %.2f%% breaches the 3%% gate\n",
                 overhead_pct);
    ok = false;
  }

  // ---- Phase 4: SLO burn ----------------------------------------------
  // A synthetic breach series — p99 at double the bound for twice the burn
  // threshold — must be flagged exactly once (episode dedup holds).
  {
    health::SloSpec spec;
    spec.bound_ns = 1'000'000;
    spec.burn_windows = 4;
    health::SloBurnDetector synthetic({spec});
    for (sim::TimePoint window = 1; window <= 8; ++window) {
      (void)synthetic.Observe(0, 2'000'000, window, /*exemplar_trace=*/0x1d);
    }
    if (synthetic.events().size() != 1) {
      std::fprintf(stderr,
                   "slo detector flagged a sustained breach %zu times "
                   "(expected exactly 1)\n",
                   synthetic.events().size());
      ok = false;
    }
    report.Set("latency.slo_synthetic_events",
               static_cast<double>(synthetic.events().size()));
  }

  // The healthy workload's own per-window p99 series must raise zero
  // episodes against a bound provisioned above its worst window.
  const std::uint64_t healthy_p99 =
      *std::max_element(on.p99_series.begin(), on.p99_series.end());
  {
    health::SloSpec spec;
    spec.bound_ns = healthy_p99;  // its own ceiling: nothing exceeds it
    spec.burn_windows = 4;
    health::SloBurnDetector workload({spec});
    for (std::size_t window = 0; window < on.p99_series.size(); ++window) {
      (void)workload.Observe(0, on.p99_series[window],
                             static_cast<sim::TimePoint>(window + 1));
    }
    if (!workload.events().empty()) {
      std::fprintf(stderr,
                   "slo detector raised %zu episodes on the healthy "
                   "workload\n",
                   workload.events().size());
      ok = false;
    }
    report.Set("latency.slo_workload_events",
               static_cast<double>(workload.events().size()));
  }

  // Congestion: the load aimed at one sink must burn the healthy-p99 SLO in
  // exactly one episode, and its exemplar trace must resolve to real spans.
  const CongestionOutcome congested = RunCongested(w, healthy_p99, 4);
  std::printf("slo: congested run p99 peaked at %llu ns against the %llu ns "
              "bound — %zu episode(s) over %zu windows, exemplar trace "
              "%016llx %s\n",
              static_cast<unsigned long long>(congested.worst_p99_ns),
              static_cast<unsigned long long>(healthy_p99),
              congested.slo_events, congested.windows,
              static_cast<unsigned long long>(congested.exemplar_trace),
              congested.exemplar_resolves ? "resolves" : "UNRESOLVED");
  if (congested.slo_events != 1) {
    std::fprintf(stderr,
                 "congestion raised %zu slo_burn episodes (expected exactly "
                 "1)\n",
                 congested.slo_events);
    ok = false;
  }
  if (congested.exemplar_trace == 0 || !congested.exemplar_resolves) {
    std::fprintf(stderr,
                 "slo_burn exemplar trace %016llx does not resolve in the "
                 "span collector\n",
                 static_cast<unsigned long long>(congested.exemplar_trace));
    ok = false;
  }
  report.Set("latency.slo_congested_events",
             static_cast<double>(congested.slo_events));
  report.Set("latency.slo_exemplar_resolves",
             congested.exemplar_resolves ? 1.0 : 0.0);

  (void)report.Write();
  return ok ? 0 : 1;
}
