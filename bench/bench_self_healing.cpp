// E9 — self-healing (§D footnote 18; FTPDS venue): "a self-healing network
// ... adapts automatically to defects in its node connectivity, functional
// specialization and performance disturbances ... automatic aggregation and
// reconstruction of the disrupted functionality."
//
// Reproduction: a 4x4 grid hosts functions; nodes fail under an MTBF
// process. With the self-healing coordinator, dead ships' functions are
// regrown from genetic checkpoints on neighbors; without it they stay dead.
// We sweep the detection delay and report service availability.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/failure.h"
#include "net/topology.h"
#include "services/security_mgmt.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct Outcome {
  double available_fraction;  // time-weighted fraction of functions alive
  double heals;
  double regrown;
};

Outcome RunTrial(bool healing_enabled, sim::Duration detection_delay,
                 std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(4, 4);
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, seed);
  wn.PopulateAllNodes();

  // Six functions spread over the grid.
  std::vector<wli::FunctionId> functions;
  for (int i = 0; i < 6; ++i) {
    wli::NetFunction fn;
    fn.name = "svc-" + std::to_string(i);
    fn.role = static_cast<node::FirstLevelRole>(
        i % static_cast<int>(node::FirstLevelRole::kRoleCount));
    functions.push_back(
        wn.DeployFunction(static_cast<net::NodeId>(i * 2 + 1), fn));
  }

  services::SelfHealingCoordinator::Config heal_config;
  heal_config.detection_delay = detection_delay;
  services::SelfHealingCoordinator healer(wn, heal_config);
  healer.CheckpointAll();

  net::FailureInjector injector(simulator, topology, Rng(seed ^ 0xfeed));
  if (healing_enabled) {
    injector.set_observer([&](const char* kind, std::uint32_t id, bool up) {
      healer.OnFailureEvent(kind, id, up);
    });
  }

  // Three node failures at 2, 5 and 8 seconds (no repair: permanent).
  Rng pick(seed);
  for (int f = 0; f < 3; ++f) {
    injector.FailNode(static_cast<net::NodeId>(pick.Index(16)),
                      (2 + 3 * f) * sim::kSecond, 0);
  }

  // Sample function availability every 100 ms over 12 s.
  constexpr sim::Duration kHorizon = 12 * sim::kSecond;
  std::uint64_t alive_samples = 0;
  std::uint64_t total_samples = 0;
  for (sim::TimePoint t = 0; t < kHorizon; t += 100 * sim::kMillisecond) {
    simulator.ScheduleAt(t, [&] {
      for (const auto fid : functions) {
        ++total_samples;
        const auto placed = wn.placements().find(fid);
        if (placed != wn.placements().end() &&
            wn.topology().IsNodeUp(placed->second)) {
          ++alive_samples;
        }
      }
    });
  }
  // Re-checkpoint periodically so sequential failures can be healed from
  // fresh state (the network's long-term memory is maintained).
  for (sim::TimePoint t = 0; t < kHorizon; t += sim::kSecond) {
    simulator.ScheduleAt(t, [&] { healer.CheckpointAll(); });
  }
  simulator.RunUntil(kHorizon);

  Outcome out;
  out.available_fraction =
      static_cast<double>(alive_samples) / static_cast<double>(total_samples);
  out.heals = static_cast<double>(healer.heals());
  out.regrown = static_cast<double>(healer.functions_regrown());
  return out;
}

}  // namespace

int main() {
  std::printf("E9 / self-healing — 4x4 grid, 6 functions, 3 permanent node"
              " failures over 12 s (15 replicas per row)\n\n");

  TablePrinter table({"configuration", "availability", "heals", "fns regrown"});
  telemetry::BenchReport report("self_healing");
  auto add_row = [&](const std::string& label, const std::string& key,
                     bool healing, sim::Duration delay) {
    const auto agg = sim::RunReplicas(
        [healing, delay](std::size_t, std::uint64_t seed) {
          const Outcome o = RunTrial(healing, delay, seed);
          return sim::ReplicaMetrics{{"avail", o.available_fraction},
                                     {"heals", o.heals},
                                     {"regrown", o.regrown}};
        },
        15, 4242);
    table.AddRow({label,
                  FormatDouble(agg.at("avail").mean * 100, 1) + "% +/- " +
                      FormatDouble(agg.at("avail").stddev * 100, 1),
                  FormatDouble(agg.at("heals").mean, 1),
                  FormatDouble(agg.at("regrown").mean, 1)});
    report.Set("availability_" + key, agg.at("avail").mean);
    report.Set("heals_" + key, agg.at("heals").mean);
  };

  add_row("no self-healing (passive)", "off", false, 0);
  add_row("healing, detect 1 s", "detect_1000ms", true, sim::kSecond);
  add_row("healing, detect 250 ms", "detect_250ms", true,
          250 * sim::kMillisecond);
  add_row("healing, detect 50 ms", "detect_50ms", true,
          50 * sim::kMillisecond);
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: availability without healing degrades with"
              " each failure and never recovers; with healing it returns to"
              " ~100%% after each failure, and faster detection closes the"
              " availability gap further.\n");
  return 0;
}
