// E8 — PMP Definition 3(4): network resonance — "a net function can emerge
// on its own by getting in touch with other net functions, facts, user
// interactions or other transmitted information".
//
// Reproduction: N ships hold fact pairs whose co-occurrence probability p
// is swept. The resonance detector fires when correlated facts appear on
// enough ships; we report emerged functions per pulse as a function of the
// correlation strength, plus the effect of the detector's thresholds.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

// One trial: plant facts with co-occurrence probability p on 16 ships, run
// one pulse, report emerged functions.
double EmergedAt(double correlation, std::size_t min_support,
                 std::uint64_t seed) {
  sim::Simulator simulator;
  net::Topology topology = net::MakeRing(16);
  wli::WnConfig config;
  config.resonance.min_support = min_support;
  config.resonance.min_jaccard = 0.5;
  config.enable_horizontal = false;
  config.enable_vertical = false;
  wli::WanderingNetwork wn(simulator, topology, config, seed);
  wn.PopulateAllNodes();
  Rng rng(seed * 31 + 1);

  // Each ship holds fact A; with probability `correlation` it also holds
  // fact B (the candidate resonant partner); plus one private noise fact.
  for (net::NodeId n = 0; n < 16; ++n) {
    wli::Ship* ship = wn.ship(n);
    const bool holds_partner = rng.Bernoulli(correlation);
    for (int rep = 0; rep < 5; ++rep) {
      ship->facts().Touch(100, 1, 3.0, simulator.now());
      if (holds_partner) {
        ship->facts().Touch(200, 2, 3.0, simulator.now());
      }
      ship->facts().Touch(1000 + n, 0, 3.0, simulator.now());
    }
  }
  wn.Pulse();
  return static_cast<double>(wn.functions_emerged());
}

}  // namespace

int main() {
  std::printf("E8 / network resonance — emergent functions from fact"
              " co-occurrence (16 ships, 20 replicas per cell)\n\n");

  TablePrinter table({"co-occurrence p", "support=4", "support=8",
                      "support=12"});
  telemetry::BenchReport report("resonance");
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    std::vector<std::string> row{FormatDouble(p, 1)};
    for (std::size_t support : {4u, 8u, 12u}) {
      const auto agg = sim::RunReplicas(
          [p, support](std::size_t, std::uint64_t seed) {
            return sim::ReplicaMetrics{
                {"emerged", EmergedAt(p, support, seed)}};
          },
          20, 777 + support);
      row.push_back(FormatDouble(agg.at("emerged").mean, 2));
      report.Set("emerged_p" + std::to_string(static_cast<int>(p * 10)) +
                     "_support" + std::to_string(support),
                 agg.at("emerged").mean);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  (void)report.Write();

  // Emergent functions acquire a role and land at the demand hotspot.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeRing(16);
    wli::WnConfig config;
    config.resonance.min_support = 4;
    wli::WanderingNetwork wn(simulator, topology, config, 5);
    wn.PopulateAllNodes();
    for (net::NodeId n = 0; n < 8; ++n) {
      for (int rep = 0; rep < 5; ++rep) {
        wn.ship(n)->facts().Touch(100, 1, 3.0, 0);
        wn.ship(n)->facts().Touch(200, 2, 3.0, 0);
      }
    }
    for (int i = 0; i < 10; ++i) {
      for (int r = 0; r < static_cast<int>(node::FirstLevelRole::kRoleCount);
           ++r) {
        wn.demand().Record(3, static_cast<node::FirstLevelRole>(r), 1.0);
      }
    }
    wn.Pulse();
    std::printf("\nresonant function placement: %llu emerged, host =",
                static_cast<unsigned long long>(wn.functions_emerged()));
    for (const auto& [fn, host] : wn.placements()) {
      std::printf(" node %u", host);
    }
    std::printf(" (demand hotspot was node 3)\n");
  }

  std::printf("\nexpected shape: emergence switches on as p crosses the"
              " support threshold — a sigmoid that shifts right as the"
              " required support grows. Below threshold, nothing emerges"
              " (no spurious autopoiesis).\n");
  return 0;
}
