// E10 — §E application: "a generic adaptive routing protocol for active
// ad-hoc wireless networks" specified with the WLI model.
//
// Reproduction: mobile ships under random waypoint mobility; the WLI
// adaptive router (control-shuttle discovery, fact-lifetime routes) is
// compared against a frozen static router and the live-topology oracle.
// Sweep: mobility speed. Metrics: delivery ratio, control overhead, route
// discoveries.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "services/routing.h"
#include "sim/replica.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

enum class RouterKind { kAdaptive, kStatic, kOracle, kDistanceVector };

struct TrialResult {
  double delivery_ratio = 0.0;
  double control_kib = 0.0;
  double discoveries = 0.0;
};

TrialResult RunTrial(RouterKind kind, double speed_mps, std::uint64_t seed) {
  constexpr std::size_t kShips = 20;
  constexpr double kArena = 500.0;
  constexpr double kRange = 170.0;
  constexpr sim::Duration kHorizon = 30 * sim::kSecond;

  sim::Simulator simulator;
  net::Topology topology;
  topology.AddNodes(kShips);

  net::RandomWaypointMobility::Config mobility_config;
  mobility_config.width_m = kArena;
  mobility_config.height_m = kArena;
  mobility_config.min_speed_mps = speed_mps > 0 ? speed_mps * 0.5 : 0.0;
  mobility_config.max_speed_mps = std::max(speed_mps, 0.01);
  mobility_config.pause_s = 0.5;
  net::RandomWaypointMobility mobility(kShips, mobility_config, Rng(seed));

  net::LinkConfig radio;
  radio.bandwidth_bps = 11e6;
  radio.latency = 2 * sim::kMillisecond;
  net::AdhocManager adhoc(simulator, topology, std::move(mobility), kRange,
                          500 * sim::kMillisecond, radio);

  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, seed ^ 0x1111);
  wn.PopulateAllNodes();

  std::unique_ptr<services::AdaptiveAdHocRouter> adaptive;
  std::unique_ptr<services::StaticRouter> frozen;
  std::unique_ptr<services::DistanceVectorRouter> dv;
  switch (kind) {
    case RouterKind::kAdaptive: {
      services::AdaptiveAdHocRouter::Config rc;
      rc.route_lifetime = 2 * sim::kSecond;
      adaptive = std::make_unique<services::AdaptiveAdHocRouter>(wn, rc);
      break;
    }
    case RouterKind::kStatic:
      frozen = std::make_unique<services::StaticRouter>(wn);
      frozen->Install();
      break;
    case RouterKind::kDistanceVector: {
      services::DistanceVectorRouter::Config dc;
      dc.advertise_interval = 500 * sim::kMillisecond;
      dc.route_lifetime = 2 * sim::kSecond;
      dv = std::make_unique<services::DistanceVectorRouter>(wn, dc);
      dv->Start(kHorizon);
      break;
    }
    case RouterKind::kOracle:
      break;  // default: live shortest-path per hop
  }

  int sent = 0, delivered = 0;
  // Several concurrent flows between random (fixed) pairs.
  Rng pairs(seed * 3 + 1);
  std::vector<std::pair<net::NodeId, net::NodeId>> flows;
  for (int f = 0; f < 4; ++f) {
    net::NodeId a = static_cast<net::NodeId>(pairs.Index(kShips));
    net::NodeId b = static_cast<net::NodeId>(pairs.Index(kShips));
    if (a == b) b = (b + 1) % kShips;
    flows.push_back({a, b});
    wn.ship(b)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
      if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
    });
  }

  adhoc.Start(kHorizon);
  for (sim::TimePoint t = 0; t < kHorizon; t += 200 * sim::kMillisecond) {
    for (std::size_t f = 0; f < flows.size(); ++f) {
      simulator.ScheduleAt(t, [&, f] {
        ++sent;
        const auto [src, dst] = flows[f];
        if (adaptive) {
          (void)adaptive->Send(src, dst, {1}, f);
        } else if (dv) {
          (void)dv->Send(src, dst, {1}, f);
        } else {
          (void)wn.Inject(wli::Shuttle::Data(src, dst, {1}, f));
        }
      });
    }
  }
  simulator.RunUntil(kHorizon);

  TrialResult result;
  result.delivery_ratio =
      sent > 0 ? static_cast<double>(delivered) / sent : 0.0;
  if (adaptive) {
    result.control_kib = static_cast<double>(adaptive->control_bytes()) / 1024;
    result.discoveries = static_cast<double>(adaptive->discoveries());
  } else if (dv) {
    result.control_kib = static_cast<double>(dv->control_bytes()) / 1024;
  }
  return result;
}

std::string Cell(const std::map<std::string, sim::AggregatedMetric>& agg,
                 const char* name, int digits = 1, double scale = 1.0) {
  return FormatDouble(agg.at(name).mean * scale, digits);
}

}  // namespace

int main() {
  std::printf("E10 / adaptive ad-hoc routing — 20 ships, 500m arena, 170m"
              " range, 4 flows, 30 s (10 replicas per cell)\n\n");

  TablePrinter table({"speed", "adaptive dlv%", "dv dlv%", "static dlv%",
                      "oracle dlv%", "aodv ctl KiB", "dv ctl KiB",
                      "discoveries"});
  telemetry::BenchReport report("adhoc_routing");
  for (double speed : {0.0, 2.0, 6.0, 12.0, 20.0}) {
    auto run = [speed](RouterKind kind) {
      return sim::RunReplicas(
          [kind, speed](std::size_t, std::uint64_t seed) {
            const TrialResult r = RunTrial(kind, speed, seed);
            return sim::ReplicaMetrics{{"dlv", r.delivery_ratio},
                                       {"ctl", r.control_kib},
                                       {"disc", r.discoveries}};
          },
          10, 9000 + static_cast<std::uint64_t>(speed * 10));
    };
    const auto adaptive = run(RouterKind::kAdaptive);
    const auto dv = run(RouterKind::kDistanceVector);
    const auto frozen = run(RouterKind::kStatic);
    const auto oracle = run(RouterKind::kOracle);
    table.AddRow({FormatDouble(speed, 0) + " m/s",
                  Cell(adaptive, "dlv", 1, 100),
                  Cell(dv, "dlv", 1, 100),
                  Cell(frozen, "dlv", 1, 100),
                  Cell(oracle, "dlv", 1, 100),
                  Cell(adaptive, "ctl", 1),
                  Cell(dv, "ctl", 1),
                  Cell(adaptive, "disc", 1)});
    const std::string suffix = "_mps" + FormatDouble(speed, 0);
    report.Set("adaptive_delivery" + suffix, adaptive.at("dlv").mean);
    report.Set("dv_delivery" + suffix, dv.at("dlv").mean);
    report.Set("adaptive_control_kib" + suffix, adaptive.at("ctl").mean);
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: at 0 m/s all routers deliver equally; as"
              " speed grows the static router collapses (stale tables)."
              " The reactive router tracks the oracle paying churn-"
              "proportional control; proactive DV also adapts but pays a"
              " constant advertisement cost and lags behind at high churn"
              " (route staleness up to its advertisement period).\n");
  return 0;
}
