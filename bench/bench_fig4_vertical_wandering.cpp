// E5 — Figure 4: vertical (intra-node) network wandering — virtual overlay
// networks spawned over the same physical infrastructure (clustering +
// spawning), including the "QoS oriented network topology on demand".
//
// Reproduction: (a) class activity on a grid drives the vertical wanderer
// to spawn per-class overlays; (b) a QoS latency-bound sweep shows which
// virtual links topology-on-demand admits; (c) overlay self-repair after a
// physical failure.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

int main() {
  std::printf("E5 / Figure 4 — vertical wandering: overlay spawning and"
              " QoS topology-on-demand\n\n");
  telemetry::BenchReport report("fig4_vertical_wandering");

  // (a) Activity-driven overlay spawning.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeGrid(3, 3);
    wli::WnConfig config;
    config.vertical.spawn_threshold = 4.0;
    config.vertical.min_members = 2;
    wli::WanderingNetwork wn(simulator, topology, config, 17);
    wn.PopulateAllNodes();

    auto program = vm::Assemble("work", "push 1\nsys emit\nhalt\n");
    (void)wn.PublishProgram(*program, 0);
    // Shuttle-borne work on two disjoint node groups, creating intra-node
    // class activity (the clustering precondition of Figure 4).
    for (net::NodeId dst : {1u, 2u, 4u, 5u}) {
      for (int i = 0; i < 3; ++i) {
        wli::Shuttle s = wli::Shuttle::Data(0, dst, {1}, 1);
        s.code_digest = program->digest();
        (void)wn.Inject(std::move(s));
      }
    }
    simulator.RunAll();
    wn.Pulse();

    TablePrinter table({"overlay (class)", "members", "virtual links",
                        "avg stretch"});
    for (const auto& [id, overlay] : wn.overlays().overlays()) {
      table.AddRow({overlay.name, std::to_string(overlay.members.size()),
                    std::to_string(overlay.links.size()),
                    FormatDouble(wn.overlays().AverageStretch(id), 2)});
    }
    std::printf("(a) overlays spawned from intra-node class activity"
                " (%llu spawned)\n",
                static_cast<unsigned long long>(
                    wn.overlays().spawned_total()));
    table.Print(std::cout);
  }

  // (b) QoS topology-on-demand: latency-bound sweep on a ring.
  {
    sim::Simulator simulator;
    net::LinkConfig link;
    link.latency = 10 * sim::kMillisecond;
    net::Topology topology = net::MakeRing(8, link);
    wli::WnConfig config;
    wli::WanderingNetwork wn(simulator, topology, config, 3);
    wn.PopulateAllNodes();

    TablePrinter table({"latency bound", "virtual links", "result"});
    const std::vector<net::NodeId> members = {0, 2, 4, 6};
    for (sim::Duration bound :
         {sim::Duration{0}, 60 * sim::kMillisecond, 25 * sim::kMillisecond,
          15 * sim::kMillisecond}) {
      auto id = wn.overlays().Spawn("qos", members, bound);
      if (id.ok()) {
        table.AddRow({bound == 0 ? "best effort" : FormatNanos(bound),
                      std::to_string(wn.overlays().Find(*id)->links.size()),
                      "connected"});
        (void)wn.overlays().Remove(*id);
      } else {
        table.AddRow({FormatNanos(bound), "-",
                      "rejected: " + std::string(StatusCodeName(
                                         id.status().code()))});
      }
    }
    std::printf("\n(b) QoS topology-on-demand over an 8-ring"
                " (10 ms links), members {0,2,4,6}\n");
    table.Print(std::cout);
  }

  // (c) Overlay self-repair after physical failure.
  {
    sim::Simulator simulator;
    net::Topology topology = net::MakeGrid(4, 4);
    wli::WnConfig config;
    wli::WanderingNetwork wn(simulator, topology, config, 5);
    wn.PopulateAllNodes();
    auto id = wn.overlays().Spawn("repairable", {1, 9, 15});
    const double stretch_before = wn.overlays().AverageStretch(*id);
    topology.SetNodeUp(5, false);  // node on the pinned 1-9 path
    const std::size_t repinned = wn.overlays().RefreshPaths();
    const double stretch_after = wn.overlays().AverageStretch(*id);
    TablePrinter table({"stage", "avg stretch", "links re-pinned"});
    table.AddRow({"before node-5 failure", FormatDouble(stretch_before, 2),
                  "-"});
    table.AddRow({"after refresh", FormatDouble(stretch_after, 2),
                  std::to_string(repinned)});
    std::printf("\n(c) overlay self-repair on a 4x4 grid\n");
    table.Print(std::cout);
    report.Set("stretch_before_failure", stretch_before);
    report.Set("stretch_after_refresh", stretch_after);
    report.Set("links_repinned", static_cast<double>(repinned));
  }

  std::printf("\nexpected shape: overlays appear where activity clusters;"
              " tighter QoS bounds admit fewer virtual links until the"
              " overlay disconnects; failures re-pin paths at a small"
              " stretch increase.\n");
  (void)report.Write();
  return 0;
}
