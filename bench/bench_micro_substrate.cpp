// E16 — substrate micro-benchmarks (google-benchmark): the costs every
// macro experiment is built on. Event queue operations, VM dispatch,
// hashing, the TLV genome codec, fact-store operations and shortest paths.
// Plus the sharded tier: a thread sweep of the multi-core window executor
// over a 256x256 grid, recording events/sec and speedup (wall metrics, never
// gated) alongside the deterministic event/handoff/window counters that the
// CI bench gate pins against bench/baselines/BENCH_micro_substrate.json.
// Plus the dispatch tier: 10k+ ships on a 104x104 grid draining column
// flows with the route cache off vs on — equal deterministic counters prove
// the cache decision-identical while VIATOR_REQUIRE_SPEEDUP enforces its
// 2x dispatch-throughput win.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "base/hash.h"
#include "telemetry/bench_report.h"
#include "base/rng.h"
#include "base/tlv.h"
#include "core/facts.h"
#include "core/genetic_transcoder.h"
#include "core/ship.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "shard/plan.h"
#include "shard/sharded_network.h"
#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/verifier.h"

namespace {

using namespace viator;

void BM_EventScheduleDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < batch; ++i) {
      simulator.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(simulator.RunAll());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventScheduleDispatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_VmArithmeticLoop(benchmark::State& state) {
  auto program = vm::Assemble("loop", R"(
  push 1000
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  jmp loop
done:
  halt
)");
  (void)vm::Verify(*program);
  vm::Environment env;
  vm::Interpreter interpreter;
  for (auto _ : state) {
    auto result = interpreter.Run(*program, env, 1 << 20);
    benchmark::DoNotOptimize(result.fuel_used);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          6003);  // instructions per run
}
BENCHMARK(BM_VmArithmeticLoop);

void BM_VmVerify(benchmark::State& state) {
  auto program = vm::Assemble("verify-me", R"(
  push 10
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  sys random
  pop
  jmp loop
done:
  halt
)");
  for (auto _ : state) {
    auto info = vm::Verify(*program);
    benchmark::DoNotOptimize(info.ok());
  }
}
BENCHMARK(BM_VmVerify);

void BM_Fnv1aHash(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Fnv1aHash)->Arg(64)->Arg(1024)->Arg(65536);

void BM_GenomeEncodeDecode(benchmark::State& state) {
  wli::ShipBlueprint blueprint;
  blueprint.role = node::FirstLevelRole::kFusion;
  for (int i = 0; i < 8; ++i) {
    blueprint.facts.push_back({static_cast<wli::FactKey>(i), i * 10, 1.5});
    blueprint.resident_programs.push_back(0x1000 + i);
  }
  wli::NetFunction fn;
  fn.id = 1;
  fn.name = "bench-fn";
  fn.fact_keys = {1, 2, 3};
  blueprint.functions.push_back(fn);
  for (auto _ : state) {
    const auto genome = wli::EncodeBlueprint(blueprint);
    auto decoded = wli::DecodeBlueprint(genome);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_GenomeEncodeDecode);

void BM_FactStoreTouch(benchmark::State& state) {
  wli::FactStore store;
  Rng rng(1);
  sim::TimePoint now = 0;
  for (auto _ : state) {
    store.Touch(rng.UniformInt(0, 1023), 1, 1.0, now);
    now += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FactStoreTouch);

void BM_FactStoreSweep(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    wli::FactStoreConfig cfg;
    cfg.capacity = population * 2;
    wli::FactStore store(cfg);
    for (std::size_t i = 0; i < population; ++i) {
      store.Touch(i, 1, 1.0, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Sweep(60 * sim::kSecond));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(population));
}
BENCHMARK(BM_FactStoreSweep)->Arg(256)->Arg(4096);

void BM_ShortestPathGrid(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  net::Topology topology = net::MakeGrid(side, side);
  const auto last = static_cast<net::NodeId>(side * side - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.ShortestPath(0, last));
  }
}
BENCHMARK(BM_ShortestPathGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_ZipfDraw(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(1000, 1.1));
  }
}
BENCHMARK(BM_ZipfDraw);

/// Console output as usual, plus every run's adjusted real time captured
/// into BENCH_micro_substrate.json for the CI perf trajectory.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(telemetry::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.Set(run.benchmark_name() + ".real_ns",
                  run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.Set(run.benchmark_name() + ".items_per_s",
                    items->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::BenchReport& report_;
};

// ---- Sharded tier -----------------------------------------------------------

struct ShardedRun {
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t handoffs = 0;
};

/// One sharded run: 4 row-band shards of a side x side grid, a fixed shuttle
/// load, a fixed window count (so the event totals are exactly reproducible
/// for the gate), hashing off (the raw-speed setting). Only the window loop
/// is timed — world construction is setup, not simulation.
ShardedRun RunShardedTier(std::size_t side, std::size_t threads,
                          std::size_t windows, std::uint64_t load) {
  shard::ShardedConfig config;
  config.shard_count = 4;
  config.threads = threads;
  config.hash_every = 0;
  config.assignment = shard::GridRowBands(side, side, 4);
  net::Topology grid = net::MakeGrid(side, side);
  shard::ShardedNetwork world(grid, config);
  const std::uint64_t nodes = side * side;
  const std::uint64_t band_rows = side / 4;
  for (std::uint64_t i = 0; i < load; ++i) {
    // Start a few rows above a band boundary, near the boundary's exit
    // gateway (the lowest-id cross link, column 0), and aim a few rows below
    // it: short routes that finish inside the sweep, most crossing a shard
    // boundary so the handoff/merge path is genuinely loaded.
    const std::uint64_t band = i % 3;
    const std::uint64_t row =
        (band + 1) * band_rows - 1 - ((i * 2654435761ULL) % 4);
    const std::uint64_t col = (i * 40503ULL + 7) % 8;
    const std::uint64_t src = row * side + col;
    const std::uint64_t dst = (src + side * 4 + (i % 8)) % nodes;
    (void)world.Inject(src, dst, {static_cast<std::int64_t>(i)}, i);
  }
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t events = world.RunWindows(windows);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ShardedRun run;
  run.seconds = std::chrono::duration<double>(elapsed).count();
  run.events = events;
  run.handoffs = world.stats().CounterValue("shard.handoffs");
  return run;
}

/// Thread sweep 1/2/4/8. Returns false when the sweep violates its own
/// contract: the deterministic counters must be identical for every thread
/// count, and (only when VIATOR_REQUIRE_SPEEDUP is set on a >=4-core
/// machine) 4 threads must clear 2x the single-thread event rate.
std::size_t EnvOr(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

bool RunShardedSweep(telemetry::BenchReport& report) {
  // Per-hop routing cost scales with active shuttles, so the committed
  // defaults keep the 256x256 grid (the scale claim) but bound the shuttle
  // load and window count to stay CI-sized. Override for bigger sweeps with
  // VIATOR_SHARD_SIDE / VIATOR_SHARD_WINDOWS / VIATOR_SHARD_LOAD — the gate
  // counters are only comparable at the baseline's settings.
  const std::size_t side = EnvOr("VIATOR_SHARD_SIDE", 256);
  const std::size_t windows = EnvOr("VIATOR_SHARD_WINDOWS", 12);
  const std::uint64_t load = EnvOr("VIATOR_SHARD_LOAD", 8192);
  report.Set("sharded.grid_side", static_cast<double>(side));
  report.Set("sharded.shards", 4.0);
  report.Set("sharded.windows", static_cast<double>(windows));
  report.Set("sharded.load", static_cast<double>(load));

  bool ok = true;
  double serial_rate = 0.0;
  double quad_rate = 0.0;
  ShardedRun reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const ShardedRun run = RunShardedTier(side, threads, windows, load);
    const double rate = run.seconds > 0.0
                            ? static_cast<double>(run.events) / run.seconds
                            : 0.0;
    std::printf("sharded t=%zu: %llu events in %.3fs (%.0f events/s)\n",
                threads, static_cast<unsigned long long>(run.events),
                run.seconds, rate);
    report.Set("sharded.events_per_sec.t" + std::to_string(threads), rate);
    if (threads == 1) {
      serial_rate = rate;
      reference = run;
      // The gate-able counters: bit-identical on every machine and thread
      // count, so any drift is a real behavior change.
      report.Set("sharded.events", static_cast<double>(run.events));
      report.Set("sharded.handoffs", static_cast<double>(run.handoffs));
    } else if (run.events != reference.events ||
               run.handoffs != reference.handoffs) {
      std::fprintf(stderr,
                   "sharded sweep: t=%zu diverged from t=1 "
                   "(events %llu vs %llu, handoffs %llu vs %llu)\n",
                   threads, static_cast<unsigned long long>(run.events),
                   static_cast<unsigned long long>(reference.events),
                   static_cast<unsigned long long>(run.handoffs),
                   static_cast<unsigned long long>(reference.handoffs));
      ok = false;
    }
    if (threads == 4) quad_rate = rate;
  }
  const double speedup = serial_rate > 0.0 ? quad_rate / serial_rate : 0.0;
  report.Set("sharded.speedup.t4", speedup);
  std::printf("sharded speedup t4/t1: %.2fx\n", speedup);
  if (std::getenv("VIATOR_REQUIRE_SPEEDUP") != nullptr &&
      std::thread::hardware_concurrency() >= 4 && speedup < 2.0) {
    std::fprintf(stderr,
                 "sharded sweep: speedup %.2fx below the required 2.0x\n",
                 speedup);
    ok = false;
  }
  return ok;
}

// ---- Dispatch tier ----------------------------------------------------------

struct DispatchRun {
  double seconds = 0.0;
  std::uint64_t events = 0;     // simulator dispatches during the drain
  std::uint64_t delivered = 0;  // shuttles consumed at their destinations
  std::uint64_t hits = 0;       // route-cache hits (cached leg only)
  std::uint64_t misses = 0;     // route-cache row fills (cached leg only)
};

/// One dispatch run: a populated side x side WanderingNetwork (one server
/// ship per node — the 10k-ship scale claim), `flows` top-to-bottom column
/// flows each injected `rounds` times, then RunAll to drain. Every forward
/// goes through Topology::NextHop, so the cached leg fills one first-hop row
/// per forwarding source and rides hits from then on, while the uncached leg
/// pays a fresh per-pair BFS on every hop. Only the drain is timed — world
/// construction and injection are setup, not dispatch.
DispatchRun RunDispatchTier(std::size_t side, std::uint64_t flows,
                            std::uint64_t rounds, bool cache_on) {
  sim::Simulator simulator;
  net::Topology grid = net::MakeGrid(side, side);
  grid.SetRouteCacheEnabled(cache_on);
  // Column flows touch flows*side distinct forwarding sources; keep them all
  // resident so the cached leg measures the steady-state hit path, not LRU
  // churn (capacity pressure has its own ctest coverage).
  grid.SetRouteCacheCapacity(flows * side + 1);
  wli::WnConfig config;
  wli::WanderingNetwork network(simulator, grid, config, /*seed=*/42);
  network.PopulateAllNodes();

  const std::uint64_t spacing = side / flows;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (std::uint64_t f = 0; f < flows; ++f) {
      // Straight column routes: the unique shortest path from (0, col) to
      // (side-1, col) is the column itself, so the legs are trivially
      // comparable and the hop count per shuttle is exactly side-1.
      const auto col = static_cast<net::NodeId>(f * spacing + spacing / 2);
      wli::Shuttle shuttle =
          wli::Shuttle::Data(col, static_cast<net::NodeId>(
                                      (side - 1) * side + col),
                             {static_cast<std::int64_t>(r)}, /*flow=*/f);
      shuttle.header.ttl = 255;  // column routes are side-1 hops; outlive 64
      (void)network.Inject(std::move(shuttle));
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t events = simulator.RunAll();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  DispatchRun run;
  run.seconds = std::chrono::duration<double>(elapsed).count();
  run.events = events;
  network.ForEachShip([&run](wli::Ship& ship) {
    run.delivered += ship.shuttles_consumed();
  });
  run.hits = grid.route_cache_stats().hits;
  run.misses = grid.route_cache_stats().misses;
  return run;
}

/// Cache-off vs cache-on legs over the same seeded 10k-ship world. Equal
/// event and delivery counts prove the route cache decision-identical to
/// BFS-per-hop at scale; the wall rates measure its win. The deterministic
/// counters land in the committed baseline; rates and the speedup carry
/// gate-exempt names ("per_sec", "speedup"). With VIATOR_REQUIRE_SPEEDUP set
/// the cached leg must clear 2x the uncached event rate.
bool RunDispatchSweep(telemetry::BenchReport& report) {
  const std::size_t side = EnvOr("VIATOR_DISPATCH_SIDE", 104);
  const std::uint64_t flows = EnvOr("VIATOR_DISPATCH_FLOWS", 8);
  const std::uint64_t rounds = EnvOr("VIATOR_DISPATCH_ROUNDS", 32);
  report.Set("dispatch.grid_side", static_cast<double>(side));
  report.Set("dispatch.ships", static_cast<double>(side * side));
  report.Set("dispatch.flows", static_cast<double>(flows));
  report.Set("dispatch.rounds", static_cast<double>(rounds));

  const DispatchRun uncached = RunDispatchTier(side, flows, rounds, false);
  const DispatchRun cached = RunDispatchTier(side, flows, rounds, true);
  const auto rate = [](const DispatchRun& run) {
    return run.seconds > 0.0 ? static_cast<double>(run.events) / run.seconds
                             : 0.0;
  };
  const double uncached_rate = rate(uncached);
  const double cached_rate = rate(cached);
  const double speedup =
      uncached_rate > 0.0 ? cached_rate / uncached_rate : 0.0;
  std::printf("dispatch cache=off: %llu events in %.3fs (%.0f events/s)\n",
              static_cast<unsigned long long>(uncached.events),
              uncached.seconds, uncached_rate);
  std::printf(
      "dispatch cache=on:  %llu events in %.3fs (%.0f events/s, "
      "%llu hits / %llu fills)\n",
      static_cast<unsigned long long>(cached.events), cached.seconds,
      cached_rate, static_cast<unsigned long long>(cached.hits),
      static_cast<unsigned long long>(cached.misses));
  std::printf("dispatch speedup cached/uncached: %.2fx\n", speedup);

  report.Set("dispatch.events", static_cast<double>(cached.events));
  report.Set("dispatch.delivered", static_cast<double>(cached.delivered));
  report.Set("dispatch.cache_hits", static_cast<double>(cached.hits));
  report.Set("dispatch.cache_misses", static_cast<double>(cached.misses));
  report.Set("dispatch.events_per_sec.cached", cached_rate);
  report.Set("dispatch.events_per_sec.uncached", uncached_rate);
  report.Set("dispatch.speedup", speedup);

  bool ok = true;
  if (uncached.events != cached.events ||
      uncached.delivered != cached.delivered) {
    std::fprintf(stderr,
                 "dispatch tier: cache changed behavior (events %llu vs "
                 "%llu, delivered %llu vs %llu)\n",
                 static_cast<unsigned long long>(uncached.events),
                 static_cast<unsigned long long>(cached.events),
                 static_cast<unsigned long long>(uncached.delivered),
                 static_cast<unsigned long long>(cached.delivered));
    ok = false;
  }
  if (cached.delivered < flows * rounds) {
    std::fprintf(stderr,
                 "dispatch tier: only %llu of %llu shuttles delivered\n",
                 static_cast<unsigned long long>(cached.delivered),
                 static_cast<unsigned long long>(flows * rounds));
    ok = false;
  }
  if (std::getenv("VIATOR_REQUIRE_SPEEDUP") != nullptr && speedup < 2.0) {
    std::fprintf(stderr,
                 "dispatch tier: speedup %.2fx below the required 2.0x\n",
                 speedup);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  telemetry::BenchReport report("micro_substrate");
  JsonCaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool sharded_ok = RunShardedSweep(report);
  const bool dispatch_ok = RunDispatchSweep(report);
  (void)report.Write();
  return (sharded_ok && dispatch_ok) ? 0 : 1;
}
