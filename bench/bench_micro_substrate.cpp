// E16 — substrate micro-benchmarks (google-benchmark): the costs every
// macro experiment is built on. Event queue operations, VM dispatch,
// hashing, the TLV genome codec, fact-store operations and shortest paths.
#include <benchmark/benchmark.h>

#include "base/hash.h"
#include "telemetry/bench_report.h"
#include "base/rng.h"
#include "base/tlv.h"
#include "core/facts.h"
#include "core/genetic_transcoder.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "vm/assembler.h"
#include "vm/interpreter.h"
#include "vm/verifier.h"

namespace {

using namespace viator;

void BM_EventScheduleDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < batch; ++i) {
      simulator.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(simulator.RunAll());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventScheduleDispatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_VmArithmeticLoop(benchmark::State& state) {
  auto program = vm::Assemble("loop", R"(
  push 1000
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  jmp loop
done:
  halt
)");
  (void)vm::Verify(*program);
  vm::Environment env;
  vm::Interpreter interpreter;
  for (auto _ : state) {
    auto result = interpreter.Run(*program, env, 1 << 20);
    benchmark::DoNotOptimize(result.fuel_used);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          6003);  // instructions per run
}
BENCHMARK(BM_VmArithmeticLoop);

void BM_VmVerify(benchmark::State& state) {
  auto program = vm::Assemble("verify-me", R"(
  push 10
  store 0
loop:
  load 0
  jz done
  load 0
  push -1
  add
  store 0
  sys random
  pop
  jmp loop
done:
  halt
)");
  for (auto _ : state) {
    auto info = vm::Verify(*program);
    benchmark::DoNotOptimize(info.ok());
  }
}
BENCHMARK(BM_VmVerify);

void BM_Fnv1aHash(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0x5a});
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Fnv1aHash)->Arg(64)->Arg(1024)->Arg(65536);

void BM_GenomeEncodeDecode(benchmark::State& state) {
  wli::ShipBlueprint blueprint;
  blueprint.role = node::FirstLevelRole::kFusion;
  for (int i = 0; i < 8; ++i) {
    blueprint.facts.push_back({static_cast<wli::FactKey>(i), i * 10, 1.5});
    blueprint.resident_programs.push_back(0x1000 + i);
  }
  wli::NetFunction fn;
  fn.id = 1;
  fn.name = "bench-fn";
  fn.fact_keys = {1, 2, 3};
  blueprint.functions.push_back(fn);
  for (auto _ : state) {
    const auto genome = wli::EncodeBlueprint(blueprint);
    auto decoded = wli::DecodeBlueprint(genome);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_GenomeEncodeDecode);

void BM_FactStoreTouch(benchmark::State& state) {
  wli::FactStore store;
  Rng rng(1);
  sim::TimePoint now = 0;
  for (auto _ : state) {
    store.Touch(rng.UniformInt(0, 1023), 1, 1.0, now);
    now += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FactStoreTouch);

void BM_FactStoreSweep(benchmark::State& state) {
  const auto population = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    wli::FactStoreConfig cfg;
    cfg.capacity = population * 2;
    wli::FactStore store(cfg);
    for (std::size_t i = 0; i < population; ++i) {
      store.Touch(i, 1, 1.0, 0);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.Sweep(60 * sim::kSecond));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(population));
}
BENCHMARK(BM_FactStoreSweep)->Arg(256)->Arg(4096);

void BM_ShortestPathGrid(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  net::Topology topology = net::MakeGrid(side, side);
  const auto last = static_cast<net::NodeId>(side * side - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.ShortestPath(0, last));
  }
}
BENCHMARK(BM_ShortestPathGrid)->Arg(8)->Arg(16)->Arg(32);

void BM_ZipfDraw(benchmark::State& state) {
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Zipf(1000, 1.1));
  }
}
BENCHMARK(BM_ZipfDraw);

/// Console output as usual, plus every run's adjusted real time captured
/// into BENCH_micro_substrate.json for the CI perf trajectory.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(telemetry::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.Set(run.benchmark_name() + ".real_ns",
                  run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.Set(run.benchmark_name() + ".items_per_s",
                    items->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  telemetry::BenchReport report("micro_substrate");
  JsonCaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  (void)report.Write();
  return 0;
}
