// E18 — §E wandering-function statistics: functions "wander and settle
// down in other hosts, thus creating a valuable statistics about the
// frequency of usage of wandering functions in the network. The results
// obtained after a careful evaluation of this data can be used for the
// design of new network architectures."
//
// (a) The ledger's evaluation output for a wandering fusion service under a
// rotating hotspot: visit counts, dwell times and the per-host usage
// distribution — i.e. *where work actually happened*, the input the paper
// says future topology design should consume.
// (b) Pulse-interval ablation: the metamorphosis cadence trades adaptation
// lag (off-host service time) against migration/transfer overhead.
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct AblationOutcome {
  std::uint64_t migrations = 0;
  std::uint64_t migration_bytes = 0;
  double colocated_fraction = 0.0;  // requests served at the hotspot
  std::size_t visits = 0;
  sim::Duration mean_dwell = 0;
};

AblationOutcome Run(sim::Duration pulse_interval, bool wandering,
                    wli::FunctionUsageLedger* ledger_out = nullptr,
                    wli::FunctionId* id_out = nullptr) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = 5 * sim::kMillisecond;
  net::Topology topology = net::MakeRing(8, link);
  wli::WnConfig config;
  config.pulse_interval = pulse_interval;
  config.enable_horizontal = wandering;
  config.horizontal.hysteresis = 1.2;
  wli::WanderingNetwork wn(simulator, topology, config, 19);
  wn.PopulateAllNodes();

  wli::NetFunction fn;
  fn.name = "wandering-fusion";
  fn.role = node::FirstLevelRole::kFusion;
  const auto id = wn.DeployFunction(0, fn);

  // Rotating hotspot: every second the demand (and the request source)
  // moves two nodes around the ring; requests go to the current host.
  std::uint64_t requests = 0;
  std::uint64_t colocated = 0;
  constexpr int kEpochs = 8;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const net::NodeId hotspot = static_cast<net::NodeId>((epoch * 2) % 8);
    for (int burst = 0; burst < 8; ++burst) {
      simulator.ScheduleAt(epoch * sim::kSecond +
                               burst * 100 * sim::kMillisecond,
                           [&wn, hotspot, &requests, &colocated, id] {
        for (int i = 0; i < 5; ++i) {
          wn.demand().Record(hotspot, node::FirstLevelRole::kFusion, 1.0);
        }
        const auto placed = wn.placements().find(id);
        if (placed == wn.placements().end()) return;
        ++requests;
        colocated += placed->second == hotspot;
        (void)wn.Inject(wli::Shuttle::Data(hotspot, placed->second,
                                           {1}, 7));
      });
    }
  }
  wn.StartPulse(kEpochs * sim::kSecond);
  simulator.RunUntil(kEpochs * sim::kSecond);

  AblationOutcome out;
  out.migrations = wn.migrations_executed();
  // Approximate transfer overhead: migration carriers are the code shuttles
  // counted by the started-migrations counter times genome size (~150 B).
  out.migration_bytes = out.migrations * 150;
  out.colocated_fraction =
      requests == 0 ? 0.0
                    : static_cast<double>(colocated) /
                          static_cast<double>(requests);
  out.visits = wn.ledger().VisitCount(id);
  out.mean_dwell = wn.ledger().MeanDwell(id, simulator.now());
  if (ledger_out != nullptr) *ledger_out = wn.ledger();
  if (id_out != nullptr) *id_out = id;
  return out;
}

}  // namespace

int main() {
  std::printf("E18 / wandering-function usage statistics (8-ring, hotspot"
              " rotating every second for 8 s)\n\n");

  // (a) The ledger's evaluation view for one wandering run.
  {
    wli::FunctionUsageLedger ledger;
    wli::FunctionId id = 0;
    (void)Run(250 * sim::kMillisecond, true, &ledger, &id);
    std::printf("(a) host-episode history of the wandering fusion"
                " function\n");
    TablePrinter table({"episode", "host", "dwell", "uses"});
    const auto* episodes = ledger.EpisodesOf(id);
    int index = 0;
    for (const auto& episode : *episodes) {
      const sim::TimePoint end =
          episode.to == 0 ? 8 * sim::kSecond : episode.to;
      table.AddRow({std::to_string(index++),
                    "node " + std::to_string(episode.host),
                    FormatNanos(end - episode.from),
                    std::to_string(episode.uses)});
    }
    table.Print(std::cout);
    std::printf("    visits=%zu  mean dwell=%s  busiest host=node %u\n",
                ledger.VisitCount(id),
                FormatNanos(ledger.MeanDwell(id, 8 * sim::kSecond)).c_str(),
                ledger.MostUsedHost(id));
  }

  // (b) Pulse-interval ablation.
  {
    std::printf("\n(b) metamorphosis cadence ablation\n");
    TablePrinter table({"pulse interval", "migrations", "xfer bytes",
                        "colocated req", "mean dwell"});
    telemetry::BenchReport report("function_statistics");
    const AblationOutcome off = Run(250 * sim::kMillisecond, false);
    table.AddRow({"wandering off", std::to_string(off.migrations),
                  FormatBytes(off.migration_bytes),
                  FormatDouble(off.colocated_fraction * 100, 1) + "%",
                  FormatNanos(off.mean_dwell)});
    report.Set("colocated_fraction_off", off.colocated_fraction);
    for (sim::Duration interval :
         {2 * sim::kSecond, sim::kSecond, 250 * sim::kMillisecond,
          100 * sim::kMillisecond}) {
      const AblationOutcome out = Run(interval, true);
      table.AddRow({FormatNanos(interval), std::to_string(out.migrations),
                    FormatBytes(out.migration_bytes),
                    FormatDouble(out.colocated_fraction * 100, 1) + "%",
                    FormatNanos(out.mean_dwell)});
      const std::string suffix =
          "_pulse_ms" + std::to_string(interval / sim::kMillisecond);
      report.Set("colocated_fraction" + suffix, out.colocated_fraction);
      report.Set("migrations" + suffix,
                 static_cast<double>(out.migrations));
    }
    table.Print(std::cout);
    (void)report.Write();
  }

  std::printf("\nexpected shape: faster pulses track the hotspot better"
              " (higher colocated fraction, shorter dwell) at the cost of"
              " more migrations/transfer bytes; wandering-off serves almost"
              " everything remotely.\n");
  return 0;
}
