// E15 — Multidimensional Feedback Principle ablation.
//
// §C argues that active networks open many interoperating feedback
// dimensions (per-node, per-session, per-packet, ...). This harness runs a
// congested media pipeline with two real regulation loops —
//   per-session : the transcoder degrades quality when its egress backs up,
//   per-node    : a source-rate AIMD throttle driven by workload telemetry,
// — and ablates the dimensions one at a time through the feedback bus.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/mfp.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/security_mgmt.h"
#include "services/transcoding.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

struct Outcome {
  std::uint64_t queue_drops = 0;
  std::uint64_t delivered = 0;
  double final_quality = 1.0;
  double min_rate = 1.0;
};

Outcome Run(bool per_session_on, bool per_node_on) {
  sim::Simulator simulator;
  net::Topology topology;
  topology.AddNodes(4);
  net::LinkConfig fast;
  net::LinkConfig slow;
  slow.bandwidth_bps = 256 * 1024;          // 32 KiB/s bottleneck
  slow.queue_capacity_bytes = 16 * 1024;    // small buffer: drops visible
  topology.AddLink(0, 1, fast);
  topology.AddLink(1, 2, slow);
  topology.AddLink(2, 3, slow);

  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 61);
  wn.PopulateAllNodes();
  wn.feedback().EnableDimension(wli::FeedbackDimension::kPerSession,
                                per_session_on);
  wn.feedback().EnableDimension(wli::FeedbackDimension::kPerNode,
                                per_node_on);

  services::TranscodingService::Config transcoder_config;
  transcoder_config.sink = 3;
  transcoder_config.congestion_backlog_bytes = 4 * 1024;
  services::TranscodingService transcoder(wn, 1, transcoder_config);

  services::WorkloadMonitor monitor(wn, 100 * sim::kMillisecond);
  monitor.Start(20 * sim::kSecond);

  // Per-node loop: AIMD send-probability throttle at the source.
  wli::AimdRate source_rate(1.0, 0.1, 1.0, 0.05, 0.6);
  double min_rate = 1.0;
  wn.feedback().Subscribe(
      wli::FeedbackDimension::kPerNode,
      [&source_rate, &min_rate](const wli::FeedbackSignal& signal) {
        if (signal.origin != 1) return;  // watch the transcoder node
        if (signal.value > 4 * 1024) {
          source_rate.OnCongestion();
        } else {
          source_rate.OnSuccess();
        }
        min_rate = std::min(min_rate, source_rate.rate());
      });

  std::uint64_t delivered = 0;
  wn.ship(3)->SetDeliverySink(
      [&delivered](wli::Ship&, const wli::Shuttle&) { ++delivered; });

  Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    // Offered load ~1.6x the bottleneck capacity: 1 KiB frames every 20 ms.
    simulator.ScheduleAt(i * 20 * sim::kMillisecond, [&, i] {
      if (!rng.Bernoulli(source_rate.rate())) return;  // throttled
      std::vector<std::int64_t> media(128, i);
      (void)wn.Inject(wli::Shuttle::Data(0, 1, media, 9));
    });
  }
  simulator.RunUntil(20 * sim::kSecond);

  Outcome out;
  out.queue_drops = wn.stats().CounterValue("fabric.drop_queue");
  out.delivered = delivered;
  out.final_quality = transcoder.quality();
  out.min_rate = min_rate;
  return out;
}

}  // namespace

int main() {
  std::printf("E15 / multidimensional feedback ablation — 400 media frames"
              " into a 256 kbit/s bottleneck over 20 s (1.6x overload)\n\n");
  TablePrinter table({"dimensions enabled", "queue drops", "delivered",
                      "final quality", "min source rate"});
  const struct {
    const char* label;
    bool session;
    bool node;
  } cases[] = {
      {"none (open loop)", false, false},
      {"per-session only", true, false},
      {"per-node only", false, true},
      {"per-session + per-node", true, true},
  };
  telemetry::BenchReport report("mfp_dimensions");
  int case_index = 0;
  for (const auto& c : cases) {
    const Outcome out = Run(c.session, c.node);
    table.AddRow({c.label, std::to_string(out.queue_drops),
                  std::to_string(out.delivered),
                  FormatDouble(out.final_quality, 2),
                  FormatDouble(out.min_rate, 2)});
    const std::string suffix = "_case" + std::to_string(case_index++);
    report.Set("queue_drops" + suffix,
               static_cast<double>(out.queue_drops));
    report.Set("delivered" + suffix, static_cast<double>(out.delivered));
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: the open loop drops heavily; each feedback"
              " dimension alone cuts drops (by degrading quality or by"
              " throttling the source); both together drop least — the"
              " dimensions interoperate, which is the MFP claim.\n");
  return 0;
}
