// E12 — §B: the four generations of Wandering Networks.
//
//   1G: programmable at the EE layer only (classical AN).
//   2G: + NodeOS-layer programmability (ANON, Tempest, Genesis).
//   3G: + gate-level hardware reconfiguration (no prior system, per paper).
//   4G: + adaptive self-distribution and replication (Viator).
//
// Reproduction: an identical workload — shifting demand hotspot, code
// install, hardware module request, jet injection — runs on each
// generation; the table shows which capabilities engage and what that does
// to adaptation (service RTT after the hotspot moves).
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "telemetry/bench_report.h"
#include "vm/assembler.h"

using namespace viator;

namespace {

struct GenerationOutcome {
  bool code_installed = false;
  bool hardware_ok = false;
  bool jet_ran = false;
  std::uint64_t migrations = 0;
  double post_shift_rtt_ms = 0.0;
};

constexpr std::int64_t kEchoRequest = 1;
constexpr std::int64_t kEchoReply = 2;

GenerationOutcome Run(int generation) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = 5 * sim::kMillisecond;
  net::Topology topology = net::MakeLine(8, link);
  wli::WnConfig config;
  config.generation = generation;
  config.pulse_interval = 100 * sim::kMillisecond;
  config.horizontal.hysteresis = 1.2;
  wli::WanderingNetwork wn(simulator, topology, config, 55);
  wn.PopulateAllNodes();

  GenerationOutcome out;

  // Echo service handler everywhere (host answers requests).
  wn.ForEachShip([](wli::Ship& ship) {
    ship.SetRoleHandler(
        node::FirstLevelRole::kFusion,
        [](wli::Ship& host, const wli::Shuttle& shuttle) {
          if (shuttle.payload.size() < 2 ||
              shuttle.payload[0] != kEchoRequest) {
            return;
          }
          (void)host.SendShuttle(wli::Shuttle::Data(
              host.id(), shuttle.header.source,
              {kEchoReply, shuttle.payload[1]}, shuttle.header.flow_id));
        });
  });

  // 1) Code install via shuttle (1G+ capability).
  auto program = vm::Assemble("svc", "push 1\nsys emit\nhalt\n");
  wli::Shuttle code;
  code.header.source = 0;
  code.header.destination = 2;
  code.header.kind = wli::ShuttleKind::kCode;
  code.code_image = program->Serialize();
  (void)wn.Inject(std::move(code));
  simulator.RunAll();
  out.code_installed =
      wn.ship(2)->os().code_cache().Contains(program->digest());

  // 2) Hardware module request (3G+).
  node::HardwareModule module{1, "accel",
                              node::SecondLevelClass::kTranscoding, 10000,
                              4.0, 0};
  out.hardware_ok = wn.ship(2)
                        ->os()
                        .RequestRoleSwitch(
                            node::FirstLevelRole::kFusion,
                            node::SwitchMechanism::kHardwareReconfig)
                        .ok();
  (void)module;

  // 3) Jet (4G self-replication).
  auto jet_code = vm::Assemble("jet", "push 1\nsys emit\nhalt\n");
  (void)wn.PublishProgram(*jet_code, 0);
  wli::Shuttle jet;
  jet.header.source = 0;
  jet.header.destination = 1;
  jet.header.kind = wli::ShuttleKind::kJet;
  jet.code_digest = jet_code->digest();
  jet.code_image = jet_code->Serialize();
  jet.replication_budget = 2;
  (void)wn.Inject(std::move(jet));
  simulator.RunAll();
  out.jet_ran = wn.stats().CounterValue("wn.jet_refused") == 0;

  // 4) Adaptive self-distribution: fusion service deployed at node 1,
  // hotspot moves to node 6; only 4G migrates.
  wli::NetFunction fn;
  fn.name = "fusion-svc";
  fn.role = node::FirstLevelRole::kFusion;
  const auto fid = wn.DeployFunction(1, fn);
  wn.StartPulse(100 * sim::kSecond);
  for (int burst = 0; burst < 5; ++burst) {
    simulator.ScheduleAfter(burst * 120 * sim::kMillisecond, [&wn] {
      for (int i = 0; i < 25; ++i) {
        wn.demand().Record(6, node::FirstLevelRole::kFusion, 1.0);
      }
    });
  }
  simulator.RunUntil(simulator.now() + sim::kSecond);
  out.migrations = wn.migrations_executed();

  sim::TimePoint reply_at = 0;
  wn.ship(6)->SetDeliverySink([&](wli::Ship&, const wli::Shuttle& s) {
    if (!s.payload.empty() && s.payload[0] == kEchoReply) {
      reply_at = simulator.now();
    }
  });
  const net::NodeId host = wn.placements().at(fid);
  const sim::TimePoint sent = simulator.now();
  if (host == 6) {
    out.post_shift_rtt_ms = 0.0;
  } else {
    (void)wn.Inject(wli::Shuttle::Data(6, host, {kEchoRequest, 1}, 42));
    simulator.RunAll();
    out.post_shift_rtt_ms = sim::ToSeconds(reply_at - sent) * 1e3;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E12 / Wandering Network generations — identical workload,"
              " capability gating per generation\n\n");
  TablePrinter table({"generation", "code install", "hw reconfig",
                      "jets", "migrations", "post-shift RTT"});
  const char* labels[] = {"1G (classic AN)", "2G (ANON/Tempest/Genesis)",
                          "3G (+hw reconfig)", "4G (Viator)"};
  telemetry::BenchReport report("generations");
  for (int generation = 1; generation <= 4; ++generation) {
    const auto out = Run(generation);
    table.AddRow({labels[generation - 1],
                  out.code_installed ? "yes" : "refused",
                  out.hardware_ok ? "yes" : "refused",
                  out.jet_ran ? "yes" : "refused",
                  std::to_string(out.migrations),
                  FormatDouble(out.post_shift_rtt_ms, 1) + " ms"});
    const std::string suffix = "_gen" + std::to_string(generation);
    report.Set("migrations" + suffix, static_cast<double>(out.migrations));
    report.Set("post_shift_rtt_ms" + suffix, out.post_shift_rtt_ms);
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: capabilities accrete monotonically with"
              " generation; only 4G migrates the function after the demand"
              " shift, collapsing the service RTT.\n");
  return 0;
}
