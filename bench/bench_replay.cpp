// Wandering Flight Recorder — journal overhead and coverage.
//
// For growing grid sizes, run the same seeded replay scenario three times —
// journal off; hooks only (the always-on tier: draw hooks + dispatch hook +
// ring appends, no state hashing, no checkpoints — this is where the <5%
// overhead target applies); and the full recorder (per-step state hashes +
// genesis checkpoint ring, the opt-in replay infrastructure whose cost
// scales with the hashing/checkpoint cadence). All runs must make identical
// simulation decisions (replay neutrality); the bench verifies that by
// comparing delivered-shuttle counts and final state hashes and aborts if
// they diverge — an overhead number measured against a different run means
// nothing.
//
// BENCH_replay.json keeps the deterministic counters (decisions recorded,
// step hashes, checkpoints, journal digest) — gated in CI against
// bench/baselines/BENCH_replay.json by `wnhealth bench` — alongside
// wall-clock metrics whose names carry "wall" so the gate ignores them.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "base/strings.h"
#include "replay/scenario.h"
#include "telemetry/bench_report.h"

using namespace viator;

namespace {

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  constexpr int kReps = 3;
  constexpr std::size_t kSteps = 192;

  std::printf("Wandering Flight Recorder — journal overhead (seeded replay"
              " scenario, %zu steps, %d reps per row)\n\n", kSteps, kReps);

  TablePrinter table({"grid", "ships", "off ms", "hooks ms", "hooks ov",
                      "full ms", "full ov", "decisions", "ckpts"});
  telemetry::BenchReport report("replay");

  for (const std::size_t side : {3, 4, 6}) {
    double off_ms = 0, hooks_ms = 0, full_ms = 0;
    std::uint64_t decisions = 0, hashes = 0, checkpoints = 0, digest = 0;

    for (int rep = 0; rep < kReps; ++rep) {
      replay::ScenarioConfig full_config;
      full_config.seed = 0xf11e + 1000 * side + rep;
      full_config.rows = side;
      full_config.cols = side;
      full_config.steps = kSteps;
      full_config.checkpoint_every = 32;

      replay::ScenarioConfig off_config = full_config;
      off_config.journal = false;
      off_config.checkpoint_every = 0;
      off_config.hash_every = 0;

      replay::ScenarioConfig hooks_config = full_config;
      hooks_config.checkpoint_every = 0;
      hooks_config.hash_every = 0;

      replay::ReplayWorld off(off_config);
      auto t0 = std::chrono::steady_clock::now();
      off.RunToStep(kSteps);
      off_ms += MillisSince(t0);

      replay::ReplayWorld hooks(hooks_config);
      t0 = std::chrono::steady_clock::now();
      hooks.RunToStep(kSteps);
      hooks_ms += MillisSince(t0);

      replay::ReplayWorld full(full_config);
      t0 = std::chrono::steady_clock::now();
      full.RunToStep(kSteps);
      full_ms += MillisSince(t0);

      // Replay neutrality: every recorded run must have made bit-identical
      // decisions, or the overhead numbers are noise.
      for (const replay::ReplayWorld* on : {&hooks, &full}) {
        if (on->Delivered() != off.Delivered() ||
            on->StateHash() != off.StateHash()) {
          std::fprintf(stderr,
                       "neutrality violated for %zux%zu rep %d: %llu vs %llu"
                       " delivered, state 0x%llx vs 0x%llx\n",
                       side, side, rep,
                       static_cast<unsigned long long>(on->Delivered()),
                       static_cast<unsigned long long>(off.Delivered()),
                       static_cast<unsigned long long>(on->StateHash()),
                       static_cast<unsigned long long>(off.StateHash()));
          return 1;
        }
      }
      decisions = full.journal().total_records();
      hashes = full.journal().window_hashes().size();
      checkpoints = full.checkpoints().size();
      digest = full.journal().rolling_digest();
    }

    const auto overhead = [&](double on_ms) {
      return off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
    };
    table.AddRow(
        {std::to_string(side) + "x" + std::to_string(side),
         std::to_string(side * side), FormatDouble(off_ms / kReps, 2),
         FormatDouble(hooks_ms / kReps, 2),
         FormatDouble(overhead(hooks_ms), 1) + "%",
         FormatDouble(full_ms / kReps, 2),
         FormatDouble(overhead(full_ms), 1) + "%",
         std::to_string(decisions), std::to_string(checkpoints)});

    const std::string suffix =
        "_" + std::to_string(side) + "x" + std::to_string(side);
    // Deterministic coverage counters — these gate in CI.
    report.Set("decisions" + suffix, static_cast<double>(decisions));
    report.Set("window_hashes" + suffix, static_cast<double>(hashes));
    report.Set("checkpoints" + suffix, static_cast<double>(checkpoints));
    // The digest folded to 52 bits so the JSON double round-trips exactly.
    report.Set("digest52" + suffix,
               static_cast<double>(digest & ((1ull << 52) - 1)));
    // Wall-clock metrics — "wall" in the name keeps the gate away.
    report.Set("off_wall_ms" + suffix, off_ms / kReps);
    report.Set("hooks_wall_ms" + suffix, hooks_ms / kReps);
    report.Set("full_wall_ms" + suffix, full_ms / kReps);
    report.Set("hooks_overhead_wall_pct" + suffix, overhead(hooks_ms));
    report.Set("full_overhead_wall_pct" + suffix, overhead(full_ms));
  }
  table.Print(std::cout);
  (void)report.Write();

  std::printf("\nexpected shape: the always-on tier (hooks ov) is an append"
              "-plus-hash per RNG draw and per dispatch — low single-digit"
              " percent. the full recorder adds one whole-state hash per"
              " step and a genesis checkpoint every 32 steps, costs that"
              " scale with the chosen cadences. delivered counts and state"
              " hashes are bit-identical across all runs because the hooks"
              " never draw or mutate. deterministic counters gate against"
              " bench/baselines/BENCH_replay.json.\n");
  return 0;
}
