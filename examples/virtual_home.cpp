// Virtual Home Environment (paper footnote 23): the usage statistics of
// wandering functions serve "the maintenance of a Virtual Home Environment
// for end users" — the user's personal services and profile follow them
// wherever they attach.
//
// This example composes several subsystems: a nomadic messaging function
// (delegation), the user's profile as weighted facts carried in the
// function's genome (genetic transcoding), gossip keeping profile facts
// warm, and the usage ledger reporting where the VHE actually lived and
// worked — the evaluation data footnote 23 alludes to.
//
// Run: ./virtual_home
#include <cstdio>

#include "base/strings.h"
#include "core/ledger.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/delegation.h"
#include "services/gossip.h"
#include "sim/simulator.h"

using namespace viator;

int main() {
  // A metro backbone: 3x4 grid, 5 ms links.
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = 5 * sim::kMillisecond;
  net::Topology topology = net::MakeGrid(3, 4, link);
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 2307);
  wn.PopulateAllNodes();

  // The user's VHE: a nomadic messaging function plus profile facts
  // (preferences, address book digest, codec choice) on its home ship.
  constexpr net::NodeId kHome = 0;
  services::NomadicDelegation::Config nomadic_config;
  nomadic_config.max_distance_hops = 0;  // always colocated with the user
  services::NomadicDelegation vhe(wn, kHome, nomadic_config);
  wn.ship(kHome)->facts().Touch(0x901, /*lang=*/49, 8.0, 0);
  wn.ship(kHome)->facts().Touch(0x902, /*codec=*/264, 6.0, 0);
  wn.ship(kHome)->facts().Touch(0x903, /*ring=*/2, 4.0, 0);

  // Gossip keeps the profile facts replicated near the user's trajectory.
  services::GossipService gossip(wn, {}, Rng(5));
  gossip.Start(60 * sim::kSecond);

  // The user commutes across the grid over a day: attach points in order.
  const net::NodeId itinerary[] = {0, 1, 2, 6, 10, 11, 10, 6, 2, 1, 0};
  std::printf("== Viator virtual home environment ==\n");
  std::printf("user commute across a 3x4 metro grid; VHE = nomadic"
              " messaging + profile facts\n\n");
  std::printf("%-8s %-10s %-12s %-16s\n", "stop", "attach", "VHE host",
              "profile local?");
  int stop_index = 0;
  for (net::NodeId attach : itinerary) {
    vhe.UserMovedTo(attach);
    simulator.RunAll();
    // Request served from the (now local) VHE.
    (void)vhe.SendRequest(attach, stop_index + 1);
    simulator.RunAll();
    const net::NodeId host = vhe.host();
    const bool profile_local =
        wn.ship(host)->facts().Find(0x901) != nullptr;
    std::printf("%-8d node %-5u node %-7u %-16s\n", stop_index++, attach,
                host, profile_local ? "yes" : "not yet");
    simulator.RunUntil(simulator.now() + 2 * sim::kSecond);
  }

  // Footnote 23's payoff: the evaluation data.
  const auto id = vhe.function_id();
  std::printf("\nVHE usage statistics (the ledger):\n");
  std::printf("  host changes      : %zu\n", wn.ledger().VisitCount(id));
  std::printf("  requests answered : %llu\n",
              static_cast<unsigned long long>(vhe.requests_answered()));
  std::printf("  mean dwell        : %s\n",
              FormatNanos(wn.ledger().MeanDwell(id, simulator.now()))
                  .c_str());
  std::printf("  busiest host      : node %u\n",
              wn.ledger().MostUsedHost(id));
  std::printf("\nusage by host (where the user's services actually ran):\n");
  for (const auto& [host, uses] : wn.ledger().UsageByHost()) {
    if (uses == 0) continue;
    std::printf("  node %-3u %llu uses\n", host,
                static_cast<unsigned long long>(uses));
  }
  std::printf("\nA future operator would place permanent VHE replicas at"
              " the busiest hosts — the 'careful evaluation' of wandering"
              " statistics the paper calls for.\n");
  return 0;
}
