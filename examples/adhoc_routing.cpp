// Ad-hoc routing example (§E of the paper): mobile ships under random
// waypoint mobility, with the WLI adaptive routing protocol discovering and
// repairing routes as the radio topology churns.
//
// Run: ./adhoc_routing
#include <cstdio>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/mobility.h"
#include "net/topology.h"
#include "services/routing.h"
#include "sim/simulator.h"

using namespace viator;

int main() {
  constexpr std::size_t kShips = 24;
  constexpr double kArena = 600.0;     // meters
  constexpr double kRange = 180.0;     // radio range

  sim::Simulator simulator;
  net::Topology topology;
  topology.AddNodes(kShips);

  net::RandomWaypointMobility::Config mobility_config;
  mobility_config.width_m = kArena;
  mobility_config.height_m = kArena;
  mobility_config.min_speed_mps = 2.0;
  mobility_config.max_speed_mps = 12.0;
  mobility_config.pause_s = 1.0;
  net::RandomWaypointMobility mobility(kShips, mobility_config, Rng(7));

  net::LinkConfig radio;
  radio.bandwidth_bps = 11e6;  // 802.11b-ish
  radio.latency = 2 * sim::kMillisecond;
  net::AdhocManager adhoc(simulator, topology, std::move(mobility), kRange,
                          500 * sim::kMillisecond, radio);

  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 99);
  wn.PopulateAllNodes();

  services::AdaptiveAdHocRouter::Config router_config;
  router_config.route_lifetime = 3 * sim::kSecond;
  services::AdaptiveAdHocRouter router(wn, router_config);

  // Measure delivery of a steady flow between two mobile ships.
  int sent = 0;
  int delivered = 0;
  wn.ship(kShips - 1)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle& s) {
        if (s.header.kind == wli::ShuttleKind::kData) ++delivered;
      });

  constexpr sim::Duration kHorizon = 60 * sim::kSecond;
  adhoc.Start(kHorizon);
  for (sim::TimePoint t = 0; t < kHorizon; t += 250 * sim::kMillisecond) {
    simulator.ScheduleAt(t, [&] {
      ++sent;
      (void)router.Send(0, kShips - 1, {sent}, sent);
    });
  }
  simulator.RunUntil(kHorizon);

  std::printf("== Viator ad-hoc routing (random waypoint) ==\n");
  std::printf("ships                : %zu in %.0fm x %.0fm, range %.0fm\n",
              kShips, kArena, kArena, kRange);
  std::printf("simulated time       : %s\n",
              FormatNanos(simulator.now()).c_str());
  std::printf("link transitions     : %llu (mobility churn)\n",
              static_cast<unsigned long long>(adhoc.link_transitions()));
  std::printf("data sent            : %d\n", sent);
  std::printf("data delivered       : %d (%.1f%%)\n", delivered,
              100.0 * delivered / sent);
  std::printf("route discoveries    : %llu\n",
              static_cast<unsigned long long>(router.discoveries()));
  std::printf("RREQ floods emitted  : %llu\n",
              static_cast<unsigned long long>(router.rreq_sent()));
  std::printf("control overhead     : %s\n",
              FormatBytes(router.control_bytes()).c_str());
  std::printf("drops (no route)     : %llu\n",
              static_cast<unsigned long long>(router.data_dropped_no_route()));
  return 0;
}
