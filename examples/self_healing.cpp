// Self-healing example (paper footnote 18, FTPDS context): a grid network
// hosting functions loses a node; the self-healing coordinator detects the
// failure and regrows the dead ship's functions on a neighbor from its
// genetic checkpoint, while overlays re-pin their paths.
//
// Run: ./self_healing
#include <cstdio>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/failure.h"
#include "net/topology.h"
#include "services/security_mgmt.h"
#include "sim/simulator.h"

using namespace viator;

int main() {
  sim::Simulator simulator;
  net::Topology topology = net::MakeGrid(4, 4);

  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 11);
  wn.PopulateAllNodes();

  // Host three functions on the node we will kill (node 5, an interior
  // node), give it some knowledge to carry across.
  const net::NodeId victim = 5;
  std::vector<wli::FunctionId> functions;
  const char* names[] = {"media-cache", "qos-booster", "msg-gateway"};
  const node::FirstLevelRole roles[] = {node::FirstLevelRole::kCaching,
                                        node::FirstLevelRole::kDelegation,
                                        node::FirstLevelRole::kFission};
  for (int i = 0; i < 3; ++i) {
    wli::NetFunction fn;
    fn.name = names[i];
    fn.role = roles[i];
    functions.push_back(wn.DeployFunction(victim, fn));
  }
  wn.ship(victim)->facts().Touch(0xCAFE, 42, 8.0, 0);

  // An overlay whose pinned paths cross the victim: on the 4x4 grid the
  // only two-hop path between nodes 1 and 9 runs through node 5.
  auto overlay = wn.overlays().Spawn("media-overlay", {1, 9, 15});

  services::SelfHealingCoordinator::Config heal_config;
  heal_config.detection_delay = 80 * sim::kMillisecond;
  services::SelfHealingCoordinator healer(wn, heal_config);
  healer.CheckpointAll();  // the network's long-term memory

  net::FailureInjector injector(simulator, topology, Rng(3));
  injector.set_observer([&](const char* kind, std::uint32_t id, bool up) {
    std::printf("[%s] %s %u went %s\n",
                FormatNanos(simulator.now()).c_str(), kind, id,
                up ? "up" : "down");
    healer.OnFailureEvent(kind, id, up);
  });

  const sim::TimePoint fail_at = 2 * sim::kSecond;
  injector.FailNode(victim, fail_at, /*outage=*/0);

  simulator.RunUntil(5 * sim::kSecond);
  const std::size_t repaired_links = wn.overlays().RefreshPaths();

  std::printf("\n== Viator self-healing ==\n");
  std::printf("victim node           : %u (3 functions, 1 fact)\n", victim);
  std::printf("failure at            : %s\n", FormatNanos(fail_at).c_str());
  std::printf("heal completed at     : %s (detection delay %s)\n",
              FormatNanos(healer.last_heal_time()).c_str(),
              FormatNanos(heal_config.detection_delay).c_str());
  std::printf("functions regrown     : %llu\n",
              static_cast<unsigned long long>(healer.functions_regrown()));
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const auto host = wn.placements().at(functions[i]);
    std::printf("  %-13s -> node %u (%s)\n", names[i], host,
                topology.IsNodeUp(host) ? "alive" : "DEAD");
  }
  // The genome carried the fact to the successor.
  const auto successor = wn.placements().at(functions[0]);
  std::printf("fact 0xCAFE on node %u : %lld\n", successor,
              static_cast<long long>(
                  wn.ship(successor)->facts().Get(0xCAFE).value_or(-1)));
  if (overlay.ok()) {
    std::printf("overlay links re-pinned after failure: %zu\n",
                repaired_links);
  }
  return 0;
}
