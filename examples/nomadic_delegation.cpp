// Nomadic delegation example (§D): a unified-messaging function follows a
// roaming user across a backbone ("migrates closer to a nomadic user while
// she moves"), keeping request latency flat where a pinned server's latency
// grows with distance.
//
// Run: ./nomadic_delegation
#include <cstdio>
#include <vector>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/delegation.h"
#include "sim/simulator.h"

using namespace viator;

namespace {

// One roaming episode: the user walks down a 10-node line; at each stop they
// issue a request and we record the round-trip time.
std::vector<double> RoamingRtts(bool nomadic) {
  sim::Simulator simulator;
  net::LinkConfig link;
  link.latency = 5 * sim::kMillisecond;
  net::Topology topology = net::MakeLine(10, link);
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 21);
  wn.PopulateAllNodes();

  services::NomadicDelegation::Config delegation_config;
  delegation_config.max_distance_hops = nomadic ? 1 : 1000;  // 1000 = pinned
  services::NomadicDelegation service(wn, /*initial_host=*/0,
                                      delegation_config);

  std::vector<double> rtts;
  sim::TimePoint reply_at = 0;
  for (net::NodeId stop = 0; stop < 10; ++stop) {
    wn.ship(stop)->SetDeliverySink(
        [&](wli::Ship&, const wli::Shuttle& s) {
          if (!s.payload.empty() &&
              s.payload[0] == services::kDelegationReply) {
            reply_at = simulator.now();
          }
        });
  }
  for (net::NodeId stop = 0; stop < 10; ++stop) {
    service.UserMovedTo(stop);
    simulator.RunAll();  // let any migration land
    const sim::TimePoint sent_at = simulator.now();
    (void)service.SendRequest(stop, stop + 1);
    simulator.RunAll();
    rtts.push_back(sim::ToSeconds(reply_at - sent_at) * 1e3);  // ms
  }
  return rtts;
}

}  // namespace

int main() {
  const auto nomadic = RoamingRtts(true);
  const auto pinned = RoamingRtts(false);

  std::printf("== Viator nomadic delegation ==\n");
  std::printf("user roams node 0 -> 9 on a 10-node line (5 ms links)\n\n");
  std::printf("%-10s %14s %14s\n", "user at", "nomadic RTT", "pinned RTT");
  for (std::size_t stop = 0; stop < nomadic.size(); ++stop) {
    std::printf("node %-5zu %11.1f ms %11.1f ms\n", stop, nomadic[stop],
                pinned[stop]);
  }
  double nomadic_worst = 0, pinned_worst = 0;
  for (double r : nomadic) nomadic_worst = std::max(nomadic_worst, r);
  for (double r : pinned) pinned_worst = std::max(pinned_worst, r);
  std::printf("\nworst-case RTT: nomadic %.1f ms vs pinned %.1f ms\n",
              nomadic_worst, pinned_worst);
  return 0;
}
