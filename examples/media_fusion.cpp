// Media pipeline example: sensors stream readings through an in-network
// fusion point and an adaptive transcoder toward a sink over a constrained
// backhaul — the paper's multimedia motivation (fusion servers, transcoding
// for congestion control) on one topology, compared against the passive
// (endpoint-only) alternative.
//
// Run: ./media_fusion
#include <cstdio>

#include "base/strings.h"
#include "baselines/passive.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "services/fusion.h"
#include "services/transcoding.h"
#include "sim/simulator.h"

using namespace viator;

namespace {

// Topology: 4 sensors -> hub(4) -> backhaul -> sink(6).
//   sensors 0..3 on fast edge links to 4; 4-5 and 5-6 form a slow backhaul.
net::Topology MakeSensorNet() {
  net::Topology t;
  t.AddNodes(7);
  net::LinkConfig edge;
  edge.bandwidth_bps = 100e6;
  edge.latency = sim::kMillisecond;
  net::LinkConfig backhaul;
  backhaul.bandwidth_bps = 2e6;  // 250 KB/s bottleneck
  backhaul.latency = 10 * sim::kMillisecond;
  for (net::NodeId s = 0; s < 4; ++s) t.AddLink(s, 4, edge);
  t.AddLink(4, 5, backhaul);
  t.AddLink(5, 6, backhaul);
  return t;
}

struct RunResult {
  std::uint64_t backhaul_bytes = 0;
  std::uint64_t sink_shuttles = 0;
  double transcoder_quality = 1.0;
};

RunResult RunActive(int readings_per_sensor) {
  sim::Simulator simulator;
  net::Topology topology = MakeSensorNet();
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 5);
  wn.PopulateAllNodes();

  // Fusion at the hub (window of 4 readings -> 1 aggregate), adaptive
  // transcoder at node 5 guarding the second backhaul hop.
  services::FusionService::Config fusion_config;
  fusion_config.sink = 5;
  fusion_config.window = 4;
  services::FusionService fusion(wn, 4, fusion_config);

  services::TranscodingService::Config transcoder_config;
  transcoder_config.sink = 6;
  transcoder_config.congestion_backlog_bytes = 8 * 1024;
  services::TranscodingService transcoder(wn, 5, transcoder_config);

  RunResult result;
  wn.ship(6)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++result.sink_shuttles; });

  for (int r = 0; r < readings_per_sensor; ++r) {
    for (net::NodeId sensor = 0; sensor < 4; ++sensor) {
      simulator.ScheduleAt(r * 20 * sim::kMillisecond, [&wn, sensor, r] {
        std::vector<std::int64_t> frame(32, sensor * 1000 + r);
        (void)wn.Inject(wli::Shuttle::Data(sensor, 4, frame, sensor));
      });
    }
  }
  simulator.RunAll();
  // Backhaul load = bytes over links 4-5 (id 4) and 5-6 (id 5).
  result.backhaul_bytes =
      wn.fabric().link_bytes()[4] + wn.fabric().link_bytes()[5];
  result.transcoder_quality = transcoder.quality();
  return result;
}

RunResult RunPassive(int readings_per_sensor) {
  sim::Simulator simulator;
  net::Topology topology = MakeSensorNet();
  wli::WnConfig config;
  wli::WanderingNetwork wn(simulator, topology, config, 5);
  wn.PopulateAllNodes();
  baselines::PassiveEndpoints passive(wn);

  RunResult result;
  wn.ship(6)->SetDeliverySink(
      [&](wli::Ship&, const wli::Shuttle&) { ++result.sink_shuttles; });
  for (int r = 0; r < readings_per_sensor; ++r) {
    for (net::NodeId sensor = 0; sensor < 4; ++sensor) {
      simulator.ScheduleAt(r * 20 * sim::kMillisecond,
                           [&passive, sensor, r] {
        std::vector<std::int64_t> frame(32, sensor * 1000 + r);
        // Raw end-to-end: every reading crosses the backhaul.
        (void)passive.SendRaw(sensor, 6, frame, sensor);
      });
    }
  }
  simulator.RunAll();
  result.backhaul_bytes =
      wn.fabric().link_bytes()[4] + wn.fabric().link_bytes()[5];
  return result;
}

}  // namespace

int main() {
  constexpr int kReadings = 100;
  const RunResult active = RunActive(kReadings);
  const RunResult passive = RunPassive(kReadings);

  std::printf("== Viator media fusion pipeline ==\n");
  std::printf("4 sensors x %d readings of 32 words, 2 Mbit/s backhaul\n\n",
              kReadings);
  std::printf("%-22s %14s %14s\n", "", "active WN", "passive IP");
  std::printf("%-22s %14s %14s\n", "backhaul bytes",
              FormatBytes(active.backhaul_bytes).c_str(),
              FormatBytes(passive.backhaul_bytes).c_str());
  std::printf("%-22s %14llu %14llu\n", "shuttles at sink",
              static_cast<unsigned long long>(active.sink_shuttles),
              static_cast<unsigned long long>(passive.sink_shuttles));
  std::printf("%-22s %14.2f %14s\n", "transcoder quality",
              active.transcoder_quality, "n/a");
  std::printf("\nbackhaul reduction    : %.1fx\n",
              static_cast<double>(passive.backhaul_bytes) /
                  static_cast<double>(active.backhaul_bytes));
  return 0;
}
