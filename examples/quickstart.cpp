// Quickstart: build a small Wandering Network, publish a mobile program,
// send shuttles that carry it, and watch the metamorphosis pulse evolve the
// network's roles.
//
// Run: ./quickstart
#include <cstdio>

#include "base/strings.h"
#include "core/wandering_network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "vm/assembler.h"

using namespace viator;

int main() {
  // 1. A physical substrate: 8 nodes in a ring, 100 Mbit/s, 1 ms links.
  sim::Simulator simulator;
  net::Topology topology = net::MakeRing(8);

  // 2. A 4G Wandering Network (full autopoiesis) on top of it.
  wli::WnConfig config;
  config.generation = 4;
  config.pulse_interval = 200 * sim::kMillisecond;
  wli::WanderingNetwork wn(simulator, topology, config, /*seed=*/2026);
  wn.PopulateAllNodes();

  // 3. Mobile code: a WanderScript program that doubles the shuttle's
  // payload word and records it as a fact on the hosting ship.
  auto program = vm::Assemble("doubler", R"(
  push 0
  sys payload    ; read payload[0]
  dup
  add            ; double it
  store 0
  push 4242      ; fact key
  load 0         ; fact value
  push 300       ; weight (3.0)
  sys put_fact
  halt
)");
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  if (auto published = wn.PublishProgram(*program, /*origin=*/0);
      !published.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }

  // 4. Deploy a fusion function at node 2 and shift demand toward node 6 —
  // the horizontal wanderer will migrate it there on a pulse.
  wli::NetFunction fusion;
  fusion.name = "edge-fusion";
  fusion.role = node::FirstLevelRole::kFusion;
  const auto fusion_id = wn.DeployFunction(2, fusion);

  // 5. Traffic: shuttles from node 0 to every other node, each carrying a
  // reference to the doubler (demand code loading distributes it), plus a
  // synthetic demand hotspot at node 6.
  for (net::NodeId dst = 1; dst < 8; ++dst) {
    wli::Shuttle s = wli::Shuttle::Data(0, dst, {static_cast<int64_t>(dst)},
                                        /*flow=*/dst);
    s.code_digest = program->digest();
    (void)wn.Inject(std::move(s));
  }
  simulator.ScheduleAfter(50 * sim::kMillisecond, [&] {
    for (int i = 0; i < 25; ++i) {
      wn.demand().Record(6, node::FirstLevelRole::kFusion, 1.0);
    }
  });

  wn.StartPulse(2 * sim::kSecond);
  simulator.RunUntil(2 * sim::kSecond);

  // 6. Report.
  std::printf("== Viator quickstart ==\n");
  std::printf("simulated time        : %s\n",
              FormatNanos(simulator.now()).c_str());
  std::printf("events dispatched     : %llu\n",
              static_cast<unsigned long long>(simulator.dispatched()));
  std::printf("shuttles injected     : %llu\n",
              static_cast<unsigned long long>(
                  wn.stats().CounterValue("wn.shuttles_injected")));
  std::printf("bytes on the wire     : %s\n",
              FormatBytes(wn.fabric().bytes_sent()).c_str());
  std::printf("metamorphosis pulses  : %llu\n",
              static_cast<unsigned long long>(wn.pulses()));
  std::printf("fusion function host  : node %u (deployed at node 2)\n",
              wn.placements().at(fusion_id));
  std::printf("role diversity (bits) : %.3f\n", wn.RoleDiversity());

  std::printf("\nper-ship state:\n");
  wn.ForEachShip([&](wli::Ship& ship) {
    std::printf("  node %u: role=%-11s facts=%zu code-execs=%llu\n",
                ship.id(),
                std::string(node::FirstLevelRoleName(
                                ship.os().current_role()))
                    .c_str(),
                ship.facts().size(),
                static_cast<unsigned long long>(ship.code_executions()));
  });

  // The doubler ran on each destination: payload d became fact 4242 = 2d.
  std::printf("\nfact 4242 on node 5   : %lld (expected 10)\n",
              static_cast<long long>(
                  wn.ship(5)->facts().Get(4242).value_or(-1)));
  return 0;
}
